#include "core/env.hpp"

#include <gtest/gtest.h>

namespace geo::core {
namespace {

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(0x8000000000000000ull), mix64(0));
  // splitmix64's finalizer maps 0 to 0; any nonzero input must leave it.
  EXPECT_NE(mix64(1), 0u);
}

TEST(GlobalSeed, IsStableWithinTheProcess) {
  // The value is parsed once; repeated calls must agree (the trainer, bench
  // harness, and fault model all rely on reading the same master seed).
  EXPECT_EQ(global_seed(), global_seed());
}

TEST(SeedOr, FollowsGlobalSeed) {
  const auto master = global_seed();
  if (!master.has_value()) {
    // GEO_SEED unset (the tier-1 configuration): every component keeps its
    // historical default, whatever the domain string.
    EXPECT_EQ(seed_or(42, "bench.model"), 42u);
    EXPECT_EQ(seed_or(7, "train.shuffle"), 7u);
    EXPECT_EQ(seed_or(0, "fault.model"), 0u);
  } else {
    // GEO_SEED set: the fallback is ignored and domains are decorrelated.
    EXPECT_EQ(seed_or(1, "a"), seed_or(99, "a"));
    EXPECT_NE(seed_or(1, "a"), seed_or(1, "b"));
  }
}

TEST(SeedOr, IsDeterministicPerDomain) {
  EXPECT_EQ(seed_or(5, "x"), seed_or(5, "x"));
}

}  // namespace
}  // namespace geo::core
