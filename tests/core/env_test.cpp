#include "core/env.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

namespace geo::core {
namespace {

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(0x8000000000000000ull), mix64(0));
  // splitmix64's finalizer maps 0 to 0; any nonzero input must leave it.
  EXPECT_NE(mix64(1), 0u);
}

TEST(GlobalSeed, IsStableWithinTheProcess) {
  // The value is parsed once; repeated calls must agree (the trainer, bench
  // harness, and fault model all rely on reading the same master seed).
  EXPECT_EQ(global_seed(), global_seed());
}

TEST(SeedOr, FollowsGlobalSeed) {
  const auto master = global_seed();
  if (!master.has_value()) {
    // GEO_SEED unset (the tier-1 configuration): every component keeps its
    // historical default, whatever the domain string.
    EXPECT_EQ(seed_or(42, "bench.model"), 42u);
    EXPECT_EQ(seed_or(7, "train.shuffle"), 7u);
    EXPECT_EQ(seed_or(0, "fault.model"), 0u);
  } else {
    // GEO_SEED set: the fallback is ignored and domains are decorrelated.
    EXPECT_EQ(seed_or(1, "a"), seed_or(99, "a"));
    EXPECT_NE(seed_or(1, "a"), seed_or(1, "b"));
  }
}

TEST(SeedOr, IsDeterministicPerDomain) {
  EXPECT_EQ(seed_or(5, "x"), seed_or(5, "x"));
}

TEST(ParseUint, StrictWholeString) {
  EXPECT_EQ(parse_uint("0"), 0u);
  EXPECT_EQ(parse_uint("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(parse_uint("").has_value());
  EXPECT_FALSE(parse_uint("12x").has_value());   // trailing junk
  EXPECT_FALSE(parse_uint(" 12").has_value());   // leading junk
  EXPECT_FALSE(parse_uint("-1").has_value());
  EXPECT_FALSE(parse_uint("18446744073709551616").has_value());  // overflow
}

TEST(ParseInt, StrictWholeString) {
  EXPECT_EQ(parse_int("-42"), -42);
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("4.2").has_value());
  EXPECT_FALSE(parse_int("two").has_value());
  EXPECT_FALSE(parse_int("99999999999999999999").has_value());  // overflow
}

// Regression: GEO_CRASH_AFTER_EPOCH (and every other numeric knob) used raw
// atoi, so "garbage" silently became 0 and out-of-range values were UB.
// env_int must treat both as unset, with the fallback applied.
TEST(EnvInt, FallsBackOnUnsetMalformedAndOutOfRange) {
  ::unsetenv("GEO_TEST_KNOB");
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7), 7);
  ::setenv("GEO_TEST_KNOB", "", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7), 7);  // empty counts as unset
  ::setenv("GEO_TEST_KNOB", "12", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7), 12);
  ::setenv("GEO_TEST_KNOB", "-3", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7), -3);
  ::setenv("GEO_TEST_KNOB", "garbage", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7), 7);  // atoi would have said 0
  ::setenv("GEO_TEST_KNOB", "12junk", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7), 7);  // atoi would have said 12
  ::setenv("GEO_TEST_KNOB", "99", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7, 0, 64), 7);  // above hi
  ::setenv("GEO_TEST_KNOB", "-1", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7, 0, 64), 7);  // below lo
  ::setenv("GEO_TEST_KNOB", "64", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7, 0, 64), 64);  // bounds inclusive
  ::unsetenv("GEO_TEST_KNOB");
}

TEST(ParseSize, StrictWholeStringWithBinarySuffixes) {
  EXPECT_EQ(parse_size("0"), 0);
  EXPECT_EQ(parse_size("123"), 123);           // bare number, unit 1 = bytes
  EXPECT_EQ(parse_size("123", 1 << 20), 123ll << 20);  // knob-baked unit
  EXPECT_EQ(parse_size("64K"), 64ll << 10);
  EXPECT_EQ(parse_size("64kb"), 64ll << 10);   // case-insensitive
  EXPECT_EQ(parse_size("64KiB"), 64ll << 10);
  EXPECT_EQ(parse_size("3M"), 3ll << 20);
  EXPECT_EQ(parse_size("3MiB"), 3ll << 20);
  EXPECT_EQ(parse_size("2G"), 2ll << 30);
  EXPECT_EQ(parse_size("2gib"), 2ll << 30);
  EXPECT_EQ(parse_size("5B"), 5);              // explicit bytes beat the unit
  EXPECT_EQ(parse_size("5B", 1 << 20), 5);

  EXPECT_FALSE(parse_size("").has_value());
  EXPECT_FALSE(parse_size("K").has_value());       // no digits
  EXPECT_FALSE(parse_size("-1").has_value());      // sizes are unsigned
  EXPECT_FALSE(parse_size("12 K").has_value());    // interior junk
  EXPECT_FALSE(parse_size("12KB3").has_value());   // trailing junk
  EXPECT_FALSE(parse_size("12T").has_value());     // unsupported suffix
  EXPECT_FALSE(parse_size("99999999999G").has_value());  // overflow
}

TEST(EnvSize, FallsBackOnMalformedAndRespectsSuffixes) {
  ::unsetenv("GEO_TEST_SIZE");
  EXPECT_EQ(env_size("GEO_TEST_SIZE", 42), 42);
  ::setenv("GEO_TEST_SIZE", "8", 1);
  EXPECT_EQ(env_size("GEO_TEST_SIZE", 42, 1 << 20), 8ll << 20);
  ::setenv("GEO_TEST_SIZE", "16KiB", 1);
  EXPECT_EQ(env_size("GEO_TEST_SIZE", 42, 1 << 20), 16ll << 10);
  ::setenv("GEO_TEST_SIZE", "garbage", 1);
  EXPECT_EQ(env_size("GEO_TEST_SIZE", 42), 42);
  ::setenv("GEO_TEST_SIZE", "8", 1);
  EXPECT_EQ(env_size("GEO_TEST_SIZE", 42, 1, 16, 1024), 42);  // below lo
  ::unsetenv("GEO_TEST_SIZE");
}

TEST(EnvInt, ReReadsTheEnvironmentEachCall) {
  ::setenv("GEO_TEST_KNOB2", "1", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB2", 0), 1);
  ::setenv("GEO_TEST_KNOB2", "2", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB2", 0), 2);
  ::unsetenv("GEO_TEST_KNOB2");
}

}  // namespace
}  // namespace geo::core
