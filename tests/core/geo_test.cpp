#include "core/geo.hpp"

#include <gtest/gtest.h>

namespace geo::core {
namespace {

TEST(GeoConfig, UlpFactoryNamesAndStreams) {
  const GeoConfig c = GeoConfig::ulp(32, 64);
  EXPECT_EQ(c.name, "GEO ULP-32,64");
  EXPECT_EQ(c.hw.stream_len_pool, 32);
  EXPECT_EQ(c.hw.stream_len, 64);
  EXPECT_EQ(c.hw.total_macs(), 25600);
  EXPECT_FALSE(c.hw.external_memory);
}

TEST(GeoConfig, LpFactory) {
  const GeoConfig c = GeoConfig::lp(64, 128);
  EXPECT_EQ(c.hw.total_macs(), 294912);
  EXPECT_TRUE(c.hw.external_memory);
}

TEST(GeoConfig, Fig6DesignPoints) {
  const GeoConfig base = GeoConfig::base_ulp();
  EXPECT_TRUE(base.hw.lfsr_per_sng);
  EXPECT_FALSE(base.hw.progressive);
  EXPECT_FALSE(base.hw.near_memory);
  EXPECT_EQ(base.hw.stream_len, 128);

  const GeoConfig gen = GeoConfig::gen_ulp();
  EXPECT_TRUE(gen.hw.progressive);
  EXPECT_TRUE(gen.hw.shadow_buffers);
  EXPECT_FALSE(gen.hw.near_memory) << "GEN point has no execution opts";

  const GeoConfig full = GeoConfig::gen_exec_ulp();
  EXPECT_TRUE(full.hw.near_memory);
  EXPECT_TRUE(full.hw.pipeline_stage);
  EXPECT_EQ(full.hw.stream_len_pool, 32);
}

TEST(GeoConfig, NnConfigMirrorsHardware) {
  const auto cfg = GeoConfig::ulp(32, 64).nn_config();
  EXPECT_EQ(cfg.mode, nn::ScModelConfig::Mode::kStochastic);
  EXPECT_EQ(cfg.stream_len_pool, 32);
  EXPECT_EQ(cfg.stream_len, 64);
  EXPECT_EQ(cfg.accum, nn::AccumMode::kPbw);
  EXPECT_EQ(cfg.sharing, sc::Sharing::kModerate);
  EXPECT_EQ(cfg.rng, sc::RngKind::kLfsr);
  EXPECT_TRUE(cfg.progressive);

  const auto base_cfg = GeoConfig::base_ulp().nn_config();
  EXPECT_EQ(base_cfg.rng, sc::RngKind::kTrng)
      << "unshared 16-bit LFSR baseline emulates a TRNG";
  EXPECT_EQ(base_cfg.accum, nn::AccumMode::kOr);
}

TEST(GeoAccelerator, EstimationPipelineWorks) {
  const GeoAccelerator acc(GeoConfig::ulp(32, 64));
  EXPECT_GT(acc.area().total(), 0.0);
  EXPECT_GT(acc.peak_gops(), 0.0);
  EXPECT_LT(acc.operating_vdd(), 0.9);
  EXPECT_GT(acc.timing().critical_path_cut, 0.3);
}

TEST(GeoAccelerator, RunsPaperNetworks) {
  const GeoAccelerator acc(GeoConfig::ulp(32, 64));
  for (const auto& net :
       {arch::NetworkShape::cnn4_cifar(), arch::NetworkShape::lenet5()}) {
    const arch::PerfResult r = acc.run(net);
    EXPECT_GT(r.frames_per_second, 0.0) << net.name;
    EXPECT_GT(r.energy_per_frame_j, 0.0) << net.name;
  }
}

TEST(GeoAccelerator, LenetFasterThanCnn4) {
  const GeoAccelerator acc(GeoConfig::ulp(32, 64));
  EXPECT_GT(acc.run(arch::NetworkShape::lenet5()).frames_per_second,
            acc.run(arch::NetworkShape::cnn4_cifar()).frames_per_second);
}

TEST(GeoAccelerator, EvaluateAccuracySmoke) {
  // Tiny end-to-end accuracy evaluation through the facade (bit-level SC).
  GeoConfig cfg = GeoConfig::ulp(32, 32);
  const GeoAccelerator acc(cfg);
  const nn::Dataset train_set = nn::make_digits(128, 1);
  const nn::Dataset test_set = nn::make_digits(48, 2);
  nn::TrainOptions opts;
  opts.epochs = 12;
  opts.batch_size = 16;
  const double accuracy =
      acc.evaluate_accuracy("lenet5", train_set, test_set, opts);
  EXPECT_GT(accuracy, 0.3) << "facade training should clear chance easily";
  EXPECT_LE(accuracy, 1.0);
}

}  // namespace
}  // namespace geo::core
