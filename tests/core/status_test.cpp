#include "core/status.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace geo {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const struct {
    Status status;
    StatusCode code;
    const char* label;
  } cases[] = {
      {Status::invalid_argument("a"), StatusCode::kInvalidArgument,
       "invalid-argument"},
      {Status::failed_precondition("b"), StatusCode::kFailedPrecondition,
       "failed-precondition"},
      {Status::out_of_range("c"), StatusCode::kOutOfRange, "out-of-range"},
      {Status::data_loss("d"), StatusCode::kDataLoss, "data-loss"},
      {Status::internal("e"), StatusCode::kInternal, "internal"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.to_string(),
              std::string(c.label) + ": " + c.status.message());
    EXPECT_EQ(std::string(to_string(c.code)), c.label);
  }
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status(), Status());
  EXPECT_EQ(Status::invalid_argument("x"), Status::invalid_argument("x"));
  EXPECT_NE(Status::invalid_argument("x"), Status::invalid_argument("y"));
  EXPECT_NE(Status::invalid_argument("x"), Status::out_of_range("x"));
  EXPECT_NE(Status(), Status::internal("x"));
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.status().ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  const StatusOr<int> e(Status::out_of_range("too big"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kOutOfRange);
  EXPECT_THROW(e.value(), std::logic_error);
}

TEST(StatusOr, ConstructingFromOkStatusIsAnInternalError) {
  const StatusOr<int> bad{Status()};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInternal);
}

TEST(StatusOr, MoveExtractsValue) {
  StatusOr<std::vector<int>> v(std::vector<int>{1, 2, 3});
  const std::vector<int> out = std::move(v).value();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(StatusOr, ArrowReachesMembers) {
  StatusOr<std::string> s(std::string("abc"));
  EXPECT_EQ(s->size(), 3u);
}

TEST(Status, ServingCodesCarryCodeAndMessage) {
  const Status shed = Status::resource_exhausted("queue full");
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.to_string(), "resource-exhausted: queue full");

  const Status late = Status::deadline_exceeded("expired");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.to_string(), "deadline-exceeded: expired");

  const Status down = Status::unavailable("shutting down");
  EXPECT_EQ(down.code(), StatusCode::kUnavailable);
  EXPECT_EQ(down.to_string(), "unavailable: shutting down");
}

}  // namespace
}  // namespace geo
