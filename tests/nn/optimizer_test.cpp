#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace geo::nn {
namespace {

// Minimize f(w) = (w - 3)^2 with each optimizer.
template <typename Opt, typename... Args>
float minimize(int steps, Args&&... args) {
  Param p({1});
  p.value[0] = 0.0f;
  Opt opt({&p}, std::forward<Args>(args)...);
  for (int i = 0; i < steps; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  return p.value[0];
}

TEST(Sgd, ConvergesOnQuadratic) {
  EXPECT_NEAR(minimize<Sgd>(200, 0.1f, 0.0f), 3.0f, 1e-3);
}

TEST(Sgd, MomentumConverges) {
  EXPECT_NEAR(minimize<Sgd>(200, 0.05f, 0.9f), 3.0f, 1e-2);
}

TEST(Adam, ConvergesOnQuadratic) {
  EXPECT_NEAR(minimize<Adam>(2000, 0.05f), 3.0f, 1e-2);
}

TEST(Adam, FirstStepIsLrSized) {
  Param p({1});
  p.value[0] = 0.0f;
  Adam opt({&p}, 0.01f);
  p.grad[0] = 123.0f;  // Adam normalizes magnitude away
  opt.step();
  EXPECT_NEAR(p.value[0], -0.01f, 1e-4);
}

TEST(Optimizer, ClampKeepsScDomain) {
  Param p({2});
  p.value[0] = 0.9f;
  p.value[1] = -0.9f;
  Sgd opt({&p}, 1.0f);
  opt.set_clamp(-1.0f, 1.0f);
  p.grad[0] = -5.0f;  // would push to 5.9
  p.grad[1] = 5.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f);
  EXPECT_FLOAT_EQ(p.value[1], -1.0f);
}

TEST(Adam, MultipleParams) {
  Param a({1}), b({1});
  a.value[0] = -1.0f;
  b.value[0] = 4.0f;
  Adam opt({&a, &b}, 0.05f);
  for (int i = 0; i < 2000; ++i) {
    a.grad[0] = 2.0f * (a.value[0] - 1.0f);
    b.grad[0] = 2.0f * (b.value[0] - 2.0f);
    opt.step();
  }
  EXPECT_NEAR(a.value[0], 1.0f, 1e-2);
  EXPECT_NEAR(b.value[0], 2.0f, 1e-2);
}

}  // namespace
}  // namespace geo::nn
