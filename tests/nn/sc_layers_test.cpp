#include "nn/sc_layers.hpp"

#include "nn/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace geo::nn {
namespace {

Tensor random_acts(std::vector<int> shape, unsigned seed, float lo = 0.0f,
                   float hi = 1.0f) {
  Tensor x(std::move(shape));
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  for (auto& v : x.data()) v = dist(rng);
  return x;
}

ScLayerConfig cfg(AccumMode accum, int stream_len,
                  sc::Sharing sharing = sc::Sharing::kModerate,
                  sc::RngKind rng = sc::RngKind::kLfsr) {
  ScLayerConfig c;
  c.accum = accum;
  c.stream_len = stream_len;
  c.sharing = sharing;
  c.rng = rng;
  c.layer_salt = 12;
  return c;
}

double mean_abs_diff(const Tensor& a, const Tensor& b) {
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += std::abs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

TEST(ScLayerConfig, LfsrBitsMatchStreamLength) {
  EXPECT_EQ(cfg(AccumMode::kPbw, 32).lfsr_bits(), 5u);
  EXPECT_EQ(cfg(AccumMode::kPbw, 128).lfsr_bits(), 7u);
  EXPECT_THROW(cfg(AccumMode::kPbw, 100).lfsr_bits(), std::invalid_argument);
}

TEST(ScConv2d, FxpAccumulationApproximatesFloatConv) {
  // With per-product fixed-point accumulation the SC conv is an unbiased
  // estimate of the float conv (up to quantization + stream noise).
  std::mt19937 rng(1);
  ScConv2d conv(2, 3, 3, 1, 1, rng, cfg(AccumMode::kFxp, 256));
  // Small weights keep products in the accurate SC regime.
  for (auto& w : conv.weight().value.data()) w *= 0.5f;
  const Tensor x = random_acts({1, 2, 5, 5}, 2, 0.0f, 0.8f);

  std::mt19937 rng2(1);
  Conv2d ref(2, 3, 3, 1, 1, rng2);
  ref.weight().value = conv.weight().value;

  const Tensor y_sc = conv.forward(x, false);
  const Tensor y_ref = ref.forward(x, false);
  ASSERT_EQ(y_sc.shape(), y_ref.shape());
  EXPECT_LT(mean_abs_diff(y_sc, y_ref), 0.12)
      << "FXP-accumulated SC conv should track float conv";
}

TEST(ScConv2d, OrAccumulationUnderestimatesLargeSums) {
  std::mt19937 rng(3);
  ScConv2d or_conv(4, 2, 3, 1, 1, rng, cfg(AccumMode::kOr, 128));
  std::mt19937 rng2(3);
  ScConv2d fxp_conv(4, 2, 3, 1, 1, rng2, cfg(AccumMode::kFxp, 128));
  // All-positive weights make the OR-union loss visible.
  or_conv.weight().value.fill(0.35f);
  fxp_conv.weight().value.fill(0.35f);
  const Tensor x = random_acts({1, 4, 6, 6}, 4, 0.3f, 0.9f);
  const Tensor y_or = or_conv.forward(x, false);
  const Tensor y_fxp = fxp_conv.forward(x, false);
  double or_sum = 0, fxp_sum = 0;
  for (std::size_t i = 0; i < y_or.size(); ++i) {
    or_sum += y_or[i];
    fxp_sum += y_fxp[i];
  }
  EXPECT_LT(or_sum, 0.7 * fxp_sum)
      << "OR accumulation saturates well below the true sum";
}

TEST(ScConv2d, PbwSitsBetweenOrAndFxp) {
  // Partial binary accumulation recovers part of the OR loss (Sec. III-B).
  auto run = [](AccumMode mode) {
    std::mt19937 rng(5);
    ScConv2d conv(4, 2, 3, 1, 1, rng, cfg(mode, 128));
    conv.weight().value.fill(0.3f);
    const Tensor x = random_acts({1, 4, 6, 6}, 6, 0.3f, 0.9f);
    const Tensor y = conv.forward(x, false);
    double sum = 0;
    for (float v : y.data()) sum += v;
    return sum;
  };
  const double or_sum = run(AccumMode::kOr);
  const double pbw_sum = run(AccumMode::kPbw);
  const double pbhw_sum = run(AccumMode::kPbhw);
  const double fxp_sum = run(AccumMode::kFxp);
  EXPECT_LT(or_sum, pbw_sum);
  EXPECT_LT(pbw_sum, pbhw_sum);
  EXPECT_LE(pbhw_sum, fxp_sum * 1.02);
}

TEST(ScConv2d, ApcTracksFxp) {
  auto run = [](AccumMode mode) {
    std::mt19937 rng(7);
    ScConv2d conv(2, 2, 3, 1, 1, rng, cfg(mode, 128));
    const Tensor x = random_acts({1, 2, 5, 5}, 8, 0.0f, 0.9f);
    return conv.forward(x, false);
  };
  const Tensor apc = run(AccumMode::kApc);
  const Tensor fxp = run(AccumMode::kFxp);
  EXPECT_LT(mean_abs_diff(apc, fxp), 0.25);
}

TEST(ScConv2d, DeterministicWithLfsr) {
  std::mt19937 rng(9);
  ScConv2d conv(2, 2, 3, 1, 1, rng, cfg(AccumMode::kPbw, 64));
  const Tensor x = random_acts({1, 2, 5, 5}, 10);
  const Tensor a = conv.forward(x, false);
  const Tensor b = conv.forward(x, false);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_FLOAT_EQ(a[i], b[i]) << "LFSR forward must replay exactly";
}

TEST(ScConv2d, TrngVariesBetweenPasses) {
  std::mt19937 rng(9);
  ScConv2d conv(2, 2, 3, 1, 1, rng,
                cfg(AccumMode::kPbw, 64, sc::Sharing::kModerate,
                    sc::RngKind::kTrng));
  const Tensor x = random_acts({1, 2, 5, 5}, 10);
  const Tensor a = conv.forward(x, false);
  const Tensor b = conv.forward(x, false);
  EXPECT_GT(mean_abs_diff(a, b), 1e-4)
      << "TRNG passes draw fresh randomness";
}

TEST(ScConv2d, ExtremeSharingDistortsOutputs) {
  auto run = [](sc::Sharing sharing) {
    std::mt19937 rng(11);
    ScConv2d conv(8, 2, 3, 1, 1, rng, cfg(AccumMode::kOr, 128, sharing));
    const Tensor x = random_acts({1, 8, 6, 6}, 12, 0.2f, 0.8f);
    std::mt19937 rng2(11);
    Conv2d ref(8, 2, 3, 1, 1, rng2);
    ref.weight().value = conv.weight().value;
    // Compare against float conv clipped through the same OR expectation is
    // overkill; relative distortion between sharing levels is the point.
    return mean_abs_diff(conv.forward(x, false), ref.forward(x, false));
  };
  const double moderate = run(sc::Sharing::kModerate);
  const double extreme = run(sc::Sharing::kExtreme);
  EXPECT_GT(extreme, moderate)
      << "extreme sharing correlates streams inside the dot product";
}

TEST(ScConv2d, StoresFloatInputForBackward) {
  std::mt19937 rng(13);
  ScConv2d conv(1, 1, 3, 1, 1, rng, cfg(AccumMode::kPbw, 64));
  const Tensor x = random_acts({1, 1, 4, 4}, 14);
  conv.forward(x, true);
  Tensor g({1, 1, 4, 4}, 1.0f);
  const Tensor gx = conv.backward(g);  // must not throw; float path
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(ScLinear, ApproximatesFloatLinear) {
  std::mt19937 rng(15);
  ScLayerConfig c = cfg(AccumMode::kFxp, 256);
  ScLinear lin(8, 3, rng, c);
  for (auto& w : lin.weight().value.data()) w *= 0.5f;
  std::mt19937 rng2(15);
  Linear ref(8, 3, rng2);
  ref.weight().value = lin.weight().value;
  ref.bias().value = lin.bias().value;
  const Tensor x = random_acts({2, 8}, 16, 0.0f, 0.9f);
  EXPECT_LT(mean_abs_diff(lin.forward(x, false), ref.forward(x, false)),
            0.15);
}

TEST(ScLinear, OrModeUsesSingleGroup) {
  std::mt19937 rng(17);
  ScLinear lin(16, 2, rng, cfg(AccumMode::kOr, 128));
  lin.weight().value.fill(0.4f);
  lin.bias().value.fill(0.0f);
  Tensor x({1, 16}, 0.8f);
  const Tensor y = lin.forward(x, false);
  // One OR group saturates at ~1.0 despite the true sum being ~5.1.
  EXPECT_LT(y[0], 1.1f);
}

TEST(QuantConv2d, MatchesManualFakeQuant) {
  std::mt19937 rng(19);
  QuantConv2d qconv(2, 2, 3, 1, 1, rng, 4);
  std::mt19937 rng2(19);
  Conv2d ref(2, 2, 3, 1, 1, rng2);
  ref.weight().value = fake_quantize_signed(qconv.weight().value, 4);
  const Tensor x = random_acts({1, 2, 5, 5}, 20);
  const Tensor yq = qconv.forward(x, false);
  const Tensor yr = ref.forward(fake_quantize_unsigned(x, 4), false);
  for (std::size_t i = 0; i < yq.size(); ++i)
    EXPECT_NEAR(yq[i], yr[i], 1e-5);
}

TEST(QuantConv2d, WeightsRestoredAfterForward) {
  std::mt19937 rng(21);
  QuantConv2d qconv(1, 1, 3, 1, 1, rng, 4);
  const Tensor before = qconv.weight().value;
  qconv.forward(random_acts({1, 1, 4, 4}, 22), false);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_FLOAT_EQ(qconv.weight().value[i], before[i]);
}

TEST(QuantLinear, LowerBitsHigherError) {
  const Tensor x = random_acts({4, 16}, 23);
  auto err = [&](unsigned bits) {
    std::mt19937 rng(25);
    QuantLinear q(16, 4, rng, bits);
    std::mt19937 rng2(25);
    Linear ref(16, 4, rng2);
    return mean_abs_diff(q.forward(x, false), ref.forward(x, false));
  };
  EXPECT_GT(err(2), err(8));
}

TEST(ScModelConfig, KeyDistinguishesConfigs) {
  ScModelConfig a = ScModelConfig::stochastic(32, 64);
  ScModelConfig b = ScModelConfig::stochastic(64, 128);
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.sharing = sc::Sharing::kExtreme;
  EXPECT_NE(a.key(), b.key());
  EXPECT_EQ(ScModelConfig::fixed_point(4).key(), "fxp4");
}

}  // namespace
}  // namespace geo::nn
