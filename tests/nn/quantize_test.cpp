#include "nn/quantize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace geo::nn {
namespace {

TEST(QuantizeSigned, Extremes) {
  EXPECT_EQ(quantize_signed(1.0f, 8), 127);  // clamped below +2^7
  EXPECT_EQ(quantize_signed(-1.0f, 8), -128);
  EXPECT_EQ(quantize_signed(0.0f, 8), 0);
  EXPECT_EQ(quantize_signed(10.0f, 8), 127);
  EXPECT_EQ(quantize_signed(-10.0f, 8), -128);
}

TEST(QuantizeSigned, FourBit) {
  EXPECT_EQ(quantize_signed(0.5f, 4), 4);
  EXPECT_EQ(quantize_signed(-0.5f, 4), -4);
  EXPECT_FLOAT_EQ(dequantize_signed(4, 4), 0.5f);
}

TEST(QuantizeSigned, RoundTripErrorBounded) {
  for (unsigned bits : {4u, 8u}) {
    const float step = 1.0f / static_cast<float>(1 << (bits - 1));
    const float max_code = 1.0f - step;  // symmetric quant: top code < +1
    for (float v = -0.99f; v < 0.99f; v += 0.07f) {
      const float r = dequantize_signed(quantize_signed(v, bits), bits);
      const float expected = std::min(v, max_code);
      EXPECT_NEAR(r, expected, step / 2 + 1e-6)
          << "bits=" << bits << " v=" << v;
    }
  }
}

TEST(QuantizeUnsigned, Basics) {
  EXPECT_EQ(quantize_unsigned(0.0f, 8), 0u);
  EXPECT_EQ(quantize_unsigned(1.0f, 8), 255u);
  EXPECT_EQ(quantize_unsigned(0.5f, 8), 128u);
  EXPECT_EQ(quantize_unsigned(-0.5f, 8), 0u);
  EXPECT_FLOAT_EQ(dequantize_unsigned(128, 8), 0.5f);
}

TEST(FakeQuantize, PreservesShapeAndRange) {
  Tensor t({2, 3});
  t[0] = 0.33f;
  t[1] = -0.77f;
  t[2] = 2.0f;
  t[3] = -2.0f;
  const Tensor q = fake_quantize_signed(t, 4);
  EXPECT_EQ(q.shape(), t.shape());
  for (float v : q.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
  EXPECT_NEAR(q[0], 0.33f, 1.0f / 16);
}

TEST(FakeQuantize, FewerBitsMoreError) {
  Tensor t({64});
  std::mt19937 rng(4);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : t.data()) v = dist(rng);
  auto err = [&](unsigned bits) {
    const Tensor q = fake_quantize_signed(t, bits);
    double e = 0;
    for (std::size_t i = 0; i < t.size(); ++i)
      e += std::abs(q[i] - t[i]);
    return e;
  };
  EXPECT_GT(err(2), err(4));
  EXPECT_GT(err(4), err(8));
}

TEST(FakeQuantize, UnsignedClampsNegatives) {
  Tensor t({2});
  t[0] = -0.4f;
  t[1] = 0.6f;
  const Tensor q = fake_quantize_unsigned(t, 8);
  EXPECT_FLOAT_EQ(q[0], 0.0f);
  EXPECT_NEAR(q[1], 0.6f, 1.0f / 256);
}

}  // namespace
}  // namespace geo::nn
