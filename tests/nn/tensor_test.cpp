#include "nn/tensor.hpp"

#include <gtest/gtest.h>

namespace geo::nn {
namespace {

TEST(Tensor, ShapeAndSize) {
  const Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.rank(), 4);
  EXPECT_EQ(t.size(), 120u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(3), 5);
  EXPECT_THROW(t.dim(4), std::out_of_range);
}

TEST(Tensor, FillConstructor) {
  const Tensor t({3, 3}, 2.5f);
  for (float v : t.data()) EXPECT_FLOAT_EQ(v, 2.5f);
}

TEST(Tensor, At4dUsesNchwStrides) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_FLOAT_EQ(t[t.index(1, 2, 3, 4)], 7.0f);
  EXPECT_EQ(t.index(1, 2, 3, 4), t.size() - 1);
  EXPECT_EQ(t.index(0, 0, 0, 1), 1u);
  EXPECT_EQ(t.index(0, 0, 1, 0), 5u);
  EXPECT_EQ(t.index(0, 1, 0, 0), 20u);
}

TEST(Tensor, At2d) {
  Tensor t({2, 3});
  t.at(1, 2) = 9.0f;
  EXPECT_FLOAT_EQ(t[5], 9.0f);
}

TEST(Tensor, Reshaped) {
  Tensor t({2, 6});
  t.at(1, 0) = 3.0f;
  const Tensor r = t.reshaped({2, 3, 2, 1});
  EXPECT_EQ(r.rank(), 4);
  EXPECT_FLOAT_EQ(r[6], 3.0f);
  EXPECT_THROW(t.reshaped({5}), std::invalid_argument);
}

TEST(Tensor, BatchSlice) {
  Tensor t({4, 2});
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
  const Tensor s = t.batch_slice(1, 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_FLOAT_EQ(s[0], 2.0f);
  EXPECT_FLOAT_EQ(s[3], 5.0f);
  EXPECT_THROW(t.batch_slice(3, 5), std::out_of_range);
}

TEST(Tensor, MaxAbs) {
  Tensor t({3});
  t[0] = -4.0f;
  t[1] = 2.0f;
  EXPECT_FLOAT_EQ(t.max_abs(), 4.0f);
}

TEST(Tensor, ZerosLikeAndFill) {
  Tensor t({2, 2}, 1.0f);
  Tensor z = Tensor::zeros_like(t);
  EXPECT_EQ(z.shape(), t.shape());
  EXPECT_FLOAT_EQ(z[0], 0.0f);
  z.fill(3.0f);
  EXPECT_FLOAT_EQ(z[3], 3.0f);
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).shape_string(), "(2,3)");
}

TEST(Tensor, NegativeDimThrows) {
  EXPECT_THROW(Tensor({2, -1}), std::invalid_argument);
}

}  // namespace
}  // namespace geo::nn
