#include "nn/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace geo::nn {
namespace {

class DatasetShape : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetShape, WellFormed) {
  const Dataset d = make_dataset(GetParam(), 100, 7);
  EXPECT_EQ(d.count(), 100);
  EXPECT_EQ(d.height(), 12);
  EXPECT_EQ(d.width(), 12);
  EXPECT_EQ(d.num_classes, 10);
  EXPECT_EQ(d.labels.size(), 100u);
  for (int label : d.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
  for (float v : d.images.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Names, DatasetShape,
                         ::testing::Values("digits", "svhn", "cifar"));

TEST(Dataset, ChannelCounts) {
  EXPECT_EQ(make_digits(4, 1).channels(), 1);
  EXPECT_EQ(make_svhn_syn(4, 1).channels(), 3);
  EXPECT_EQ(make_cifar_syn(4, 1).channels(), 3);
}

TEST(Dataset, SeededDeterminism) {
  const Dataset a = make_digits(20, 5);
  const Dataset b = make_digits(20, 5);
  EXPECT_EQ(a.labels, b.labels);
  for (std::size_t i = 0; i < a.images.size(); ++i)
    EXPECT_FLOAT_EQ(a.images[i], b.images[i]);
}

TEST(Dataset, DifferentSeedsDiffer) {
  const Dataset a = make_digits(20, 5);
  const Dataset b = make_digits(20, 6);
  EXPECT_NE(a.labels, b.labels);
}

TEST(Dataset, AllClassesPresent) {
  for (const char* name : {"digits", "svhn", "cifar"}) {
    const Dataset d = make_dataset(name, 300, 3);
    std::set<int> classes(d.labels.begin(), d.labels.end());
    EXPECT_EQ(classes.size(), 10u) << name;
  }
}

TEST(Dataset, DigitsHaveSignal) {
  // A glyph pixel region must be brighter than the background on average.
  const Dataset d = make_digits(50, 9);
  double mean = 0;
  for (float v : d.images.data()) mean += v;
  mean /= static_cast<double>(d.images.size());
  EXPECT_GT(mean, 0.02);
  EXPECT_LT(mean, 0.6);
}

TEST(Dataset, UnknownNameThrows) {
  EXPECT_THROW(make_dataset("imagenet", 10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace geo::nn
