// Numerical gradient checks: every float layer's backward() must match a
// central-difference estimate of its forward(). The SC layers inherit these
// backward implementations, so this is what makes stream-aware training
// trustworthy.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layers.hpp"
#include "nn/loss.hpp"

namespace geo::nn {
namespace {

// Scalar loss: sum of squares of the layer output (grad = 2 * y).
double loss_of(Layer& layer, const Tensor& x, Tensor* grad_out = nullptr) {
  const Tensor y = layer.forward(x, /*train=*/true);
  double loss = 0;
  for (float v : y.data()) loss += static_cast<double>(v) * v;
  if (grad_out) {
    *grad_out = y;
    for (auto& v : grad_out->data()) v *= 2.0f;
  }
  return loss;
}

void check_input_gradient(Layer& layer, Tensor x, double tol = 2e-2) {
  Tensor grad_out;
  loss_of(layer, x, &grad_out);
  const Tensor grad_in = layer.backward(grad_out);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(1, x.size() / 24)) {
    const float saved = x[i];
    x[i] = saved + eps;
    const double up = loss_of(layer, x);
    x[i] = saved - eps;
    const double down = loss_of(layer, x);
    x[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad_in[i], numeric,
                tol * std::max(1.0, std::abs(numeric)))
        << "input index " << i;
  }
}

void check_param_gradient(Layer& layer, const Tensor& x, double tol = 2e-2) {
  Tensor grad_out;
  loss_of(layer, x, &grad_out);
  for (Param* p : layer.params()) p->grad.fill(0.0f);
  layer.backward(grad_out);
  const float eps = 1e-3f;
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < p->value.size();
         i += std::max<std::size_t>(1, p->value.size() / 16)) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const double up = loss_of(layer, x);
      p->value[i] = saved - eps;
      const double down = loss_of(layer, x);
      p->value[i] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], numeric,
                  tol * std::max(1.0, std::abs(numeric)))
          << "param index " << i;
    }
  }
}

Tensor random_input(std::vector<int> shape, unsigned seed) {
  Tensor x(std::move(shape));
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : x.data()) v = dist(rng);
  return x;
}

TEST(GradCheck, Conv2d) {
  std::mt19937 rng(1);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  const Tensor x = random_input({2, 2, 5, 5}, 2);
  check_input_gradient(conv, x);
  check_param_gradient(conv, x);
}

TEST(GradCheck, Conv2dStride2) {
  std::mt19937 rng(3);
  Conv2d conv(1, 2, 3, 2, 1, rng);
  const Tensor x = random_input({1, 1, 6, 6}, 4);
  check_input_gradient(conv, x);
  check_param_gradient(conv, x);
}

TEST(GradCheck, Linear) {
  std::mt19937 rng(5);
  Linear lin(6, 4, rng);
  const Tensor x = random_input({3, 6}, 6);
  check_input_gradient(lin, x);
  check_param_gradient(lin, x);
}

TEST(GradCheck, AvgPool) {
  AvgPool2d pool(2);
  const Tensor x = random_input({2, 2, 4, 4}, 7);
  check_input_gradient(pool, x);
}

TEST(GradCheck, MaxPool) {
  MaxPool2d pool(2);
  const Tensor x = random_input({2, 2, 4, 4}, 8);
  check_input_gradient(pool, x, /*tol=*/5e-2);
}

TEST(GradCheck, BatchNorm) {
  BatchNorm2d bn(3);
  const Tensor x = random_input({4, 3, 3, 3}, 9);
  check_input_gradient(bn, x, /*tol=*/5e-2);
  check_param_gradient(bn, x, /*tol=*/5e-2);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  const Tensor logits = random_input({4, 5}, 10);
  const std::vector<int> labels = {1, 0, 4, 2};
  const LossResult base = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  Tensor probe = logits;
  for (std::size_t i = 0; i < probe.size(); ++i) {
    const float saved = probe[i];
    probe[i] = saved + eps;
    const double up = softmax_cross_entropy(probe, labels).loss;
    probe[i] = saved - eps;
    const double down = softmax_cross_entropy(probe, labels).loss;
    probe[i] = saved;
    EXPECT_NEAR(base.grad[i], (up - down) / (2 * eps), 1e-3);
  }
}

}  // namespace
}  // namespace geo::nn
