// Model-builder checks: topology, per-layer stream-length assignment
// ({sp, s, 128-output} — Sec. IV), BN quantization wiring, and forward
// shape propagation for all three zoo models in all three compute modes.
#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "nn/sc_layers.hpp"

namespace geo::nn {
namespace {

// Collects the SC layers of a network in order.
std::vector<const ScConv2d*> sc_convs(Sequential& net) {
  std::vector<const ScConv2d*> out;
  for (std::size_t i = 0; i < net.layer_count(); ++i)
    if (auto* c = dynamic_cast<const ScConv2d*>(&net.layer(i)))
      out.push_back(c);
  return out;
}

std::vector<const ScLinear*> sc_linears(Sequential& net) {
  std::vector<const ScLinear*> out;
  for (std::size_t i = 0; i < net.layer_count(); ++i)
    if (auto* l = dynamic_cast<const ScLinear*>(&net.layer(i)))
      out.push_back(l);
  return out;
}

TEST(Models, Cnn4StreamLengthAssignment) {
  // CNN-4: conv1 + pool, conv2 + pool, conv3 (no pool), fc (output).
  ScModelConfig cfg = ScModelConfig::stochastic(32, 64);
  Sequential net = make_cnn4(3, 10, cfg, 1);
  auto convs = sc_convs(net);
  ASSERT_EQ(convs.size(), 3u);
  EXPECT_EQ(convs[0]->config().stream_len, 32) << "pooled layer uses sp";
  EXPECT_EQ(convs[1]->config().stream_len, 32);
  EXPECT_EQ(convs[2]->config().stream_len, 64) << "non-pooled layer uses s";
  auto fcs = sc_linears(net);
  ASSERT_EQ(fcs.size(), 1u);
  EXPECT_EQ(fcs[0]->config().stream_len, 128)
      << "output layers always use 128-bit streams (paper Sec. IV)";
}

TEST(Models, LayerSaltsAreDistinct) {
  ScModelConfig cfg = ScModelConfig::stochastic(32, 64);
  Sequential net = make_vgg_slim(3, 10, cfg, 1);
  auto convs = sc_convs(net);
  ASSERT_GE(convs.size(), 2u);
  for (std::size_t i = 1; i < convs.size(); ++i)
    EXPECT_NE(convs[i]->config().layer_salt, convs[0]->config().layer_salt);
}

TEST(Models, StochasticModeQuantizesBatchNorm) {
  ScModelConfig cfg = ScModelConfig::stochastic(32, 64);
  Sequential net = make_cnn4(3, 10, cfg, 1);
  int bn_count = 0;
  for (std::size_t i = 0; i < net.layer_count(); ++i)
    if (net.layer(i).name() == "batchnorm2d") ++bn_count;
  EXPECT_EQ(bn_count, 3) << "BN before every ReLU (Sec. III-B)";
}

class ModelForwardShapes
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(ModelForwardShapes, LogitsShapeForEveryMode) {
  const auto [name, channels] = GetParam();
  for (const ScModelConfig& cfg :
       {ScModelConfig::float_model(), ScModelConfig::fixed_point(4),
        ScModelConfig::stochastic(32, 32)}) {
    Sequential net = make_model(name, channels, 10, cfg, 1);
    const Tensor x({2, channels, 12, 12});
    const Tensor y = net.forward(x, false);
    EXPECT_EQ(y.shape(), (std::vector<int>{2, 10}))
        << name << " mode " << static_cast<int>(cfg.mode);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ModelForwardShapes,
    ::testing::Values(std::make_tuple("cnn4", 3),
                      std::make_tuple("lenet5", 1),
                      std::make_tuple("vgg", 3)));

TEST(Models, ConfigPropagatesToLayers) {
  ScModelConfig cfg = ScModelConfig::stochastic(16, 32);
  cfg.sharing = sc::Sharing::kExtreme;
  cfg.accum = AccumMode::kPbhw;
  cfg.progressive = true;
  Sequential net = make_cnn4(3, 10, cfg, 1);
  for (const ScConv2d* c : sc_convs(net)) {
    EXPECT_EQ(c->config().sharing, sc::Sharing::kExtreme);
    EXPECT_EQ(c->config().accum, AccumMode::kPbhw);
    EXPECT_TRUE(c->config().progressive);
  }
}

TEST(Models, SeedChangesLayerSalts) {
  ScModelConfig a = ScModelConfig::stochastic(32, 32);
  ScModelConfig b = a;
  b.seed = 2;
  Sequential na = make_cnn4(3, 10, a, 1);
  Sequential nb = make_cnn4(3, 10, b, 1);
  EXPECT_NE(sc_convs(na)[0]->config().layer_salt,
            sc_convs(nb)[0]->config().layer_salt);
}

}  // namespace
}  // namespace geo::nn
