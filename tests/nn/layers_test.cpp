#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace geo::nn {
namespace {

std::mt19937 rng_for(unsigned seed) { return std::mt19937(seed); }

TEST(Conv2d, IdentityKernelPassesThrough) {
  auto rng = rng_for(1);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.weight().value.fill(0.0f);
  conv.weight().value.at(0, 0, 1, 1) = 1.0f;  // center tap
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  const Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.shape(), x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, KnownValue) {
  auto rng = rng_for(1);
  Conv2d conv(1, 1, 2, 1, 0, rng);
  conv.weight().value.fill(1.0f);
  Tensor x({1, 1, 2, 2});
  x[0] = 1;
  x[1] = 2;
  x[2] = 3;
  x[3] = 4;
  const Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 10.0f);
}

TEST(Conv2d, StrideAndPaddingShapes) {
  auto rng = rng_for(2);
  Conv2d conv(3, 8, 3, 2, 1, rng);
  const Tensor y = conv.forward(Tensor({2, 3, 12, 12}), false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 8, 6, 6}));
}

TEST(Linear, KnownValue) {
  auto rng = rng_for(3);
  Linear lin(2, 1, rng);
  lin.weight().value.at(0, 0) = 2.0f;
  lin.weight().value.at(0, 1) = -1.0f;
  lin.bias().value[0] = 0.5f;
  Tensor x({1, 2});
  x[0] = 3.0f;
  x[1] = 4.0f;
  EXPECT_FLOAT_EQ(lin.forward(x, false)[0], 2.5f);
}

TEST(ReLU, ForwardBackward) {
  ReLU relu;
  Tensor x({1, 4});
  x[0] = -1;
  x[1] = 0;
  x[2] = 2;
  x[3] = -3;
  const Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0);
  EXPECT_FLOAT_EQ(y[2], 2);
  Tensor g({1, 4}, 1.0f);
  const Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0);
  EXPECT_FLOAT_EQ(gx[2], 1);
}

TEST(BoundedReLU, ClampsToUnitInterval) {
  BoundedReLU r;
  Tensor x({1, 3});
  x[0] = -0.5f;
  x[1] = 0.5f;
  x[2] = 1.5f;
  const Tensor y = r.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
  EXPECT_FLOAT_EQ(y[2], 1.0f);
  Tensor g({1, 3}, 1.0f);
  const Tensor gx = r.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f) << "gradient blocked above the clamp";
}

TEST(AvgPool2d, AveragesWindows) {
  AvgPool2d pool(2);
  Tensor x({1, 1, 2, 2});
  x[0] = 1;
  x[1] = 3;
  x[2] = 5;
  x[3] = 7;
  const Tensor y = pool.forward(x, false);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  Tensor g({1, 1, 1, 1}, 1.0f);
  const Tensor gx = pool.backward(g);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gx[i], 0.25f);
}

TEST(MaxPool2d, PicksMaxAndRoutesGradient) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2});
  x[0] = 1;
  x[1] = 9;
  x[2] = 5;
  x[3] = 7;
  const Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 9.0f);
  Tensor g({1, 1, 1, 1}, 2.0f);
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[1], 2.0f);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
}

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  BatchNorm2d bn(2);
  Tensor x({4, 2, 3, 3});
  std::mt19937 rng(7);
  std::normal_distribution<float> dist(3.0f, 2.0f);
  for (auto& v : x.data()) v = dist(rng);
  const Tensor y = bn.forward(x, true);
  // Per-channel mean ~0, var ~1 after training-mode normalization.
  for (int c = 0; c < 2; ++c) {
    double mean = 0, var = 0;
    int n = 0;
    for (int b = 0; b < 4; ++b)
      for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j) {
          mean += y.at(b, c, i, j);
          ++n;
        }
    mean /= n;
    for (int b = 0; b < 4; ++b)
      for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
          var += (y.at(b, c, i, j) - mean) * (y.at(b, c, i, j) - mean);
    var /= n;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, InferenceUsesRunningStats) {
  BatchNorm2d bn(1);
  Tensor x({8, 1, 2, 2}, 0.0f);
  std::mt19937 rng(9);
  std::normal_distribution<float> dist(5.0f, 1.0f);
  for (auto& v : x.data()) v = dist(rng);
  for (int i = 0; i < 50; ++i) bn.forward(x, true);  // converge running stats
  const Tensor y = bn.forward(x, false);
  double mean = 0;
  for (float v : y.data()) mean += v;
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(mean, 0.0, 0.1);
}

TEST(BatchNorm2d, QuantizedInferenceCloseToFloat) {
  BatchNorm2d bn(1);
  Tensor x({8, 1, 2, 2});
  std::mt19937 rng(11);
  std::normal_distribution<float> dist(1.0f, 0.5f);
  for (auto& v : x.data()) v = dist(rng);
  for (int i = 0; i < 30; ++i) bn.forward(x, true);
  const Tensor yf = bn.forward(x, false);
  bn.set_quantized(8);
  const Tensor yq = bn.forward(x, false);
  for (std::size_t i = 0; i < yf.size(); ++i)
    EXPECT_NEAR(yq[i], yf[i], 0.2f);
}

TEST(Flatten, RoundTrips) {
  Flatten f;
  Tensor x({2, 3, 2, 2});
  const Tensor y = f.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 12}));
  const Tensor gx = f.backward(Tensor({2, 12}));
  EXPECT_EQ(gx.shape(), x.shape());
}

}  // namespace
}  // namespace geo::nn
