// End-to-end training integration: float, fixed-point, and bit-level SC
// models must all learn the synthetic digits task well above chance, and the
// model cache must round-trip. Sizes are kept small — these are smoke-level
// integration tests; the benches run the paper-scale sweeps.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/dataset.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"

namespace geo::nn {
namespace {

TrainOptions quick_options(int epochs) {
  TrainOptions o;
  o.epochs = epochs;
  o.batch_size = 16;
  o.verbose = false;
  return o;
}

TEST(Training, FloatLenetLearnsDigits) {
  const Dataset train_set = make_digits(192, 1);
  const Dataset test_set = make_digits(96, 2);
  Sequential net = make_lenet5(1, 10, ScModelConfig::float_model(), 7);
  const TrainResult r = train(net, train_set, test_set, quick_options(10));
  EXPECT_GT(r.test_accuracy, 0.6) << "float LeNet should beat chance easily";
}

TEST(Training, FixedPoint8BitTracksFloat) {
  const Dataset train_set = make_digits(192, 3);
  const Dataset test_set = make_digits(96, 4);
  Sequential f = make_lenet5(1, 10, ScModelConfig::float_model(), 7);
  Sequential q = make_lenet5(1, 10, ScModelConfig::fixed_point(8), 7);
  const double fa = train(f, train_set, test_set, quick_options(10)).test_accuracy;
  const double qa = train(q, train_set, test_set, quick_options(10)).test_accuracy;
  EXPECT_GT(qa, 0.5);
  EXPECT_GT(qa, fa - 0.25) << "8-bit should track float closely";
}

TEST(Training, StochasticLenetLearns) {
  // Bit-level SC training (GEO config, short streams to stay fast).
  const Dataset train_set = make_digits(128, 5);
  const Dataset test_set = make_digits(64, 6);
  ScModelConfig cfg = ScModelConfig::stochastic(32, 32);
  Sequential net = make_lenet5(1, 10, cfg, 7);
  const TrainResult r = train(net, train_set, test_set, quick_options(8));
  EXPECT_GT(r.test_accuracy, 0.4)
      << "stream-aware training should learn well above 10% chance";
}

TEST(Training, EvaluateIsDeterministicForLfsr) {
  const Dataset test_set = make_digits(32, 8);
  ScModelConfig cfg = ScModelConfig::stochastic(32, 32);
  Sequential net = make_lenet5(1, 10, cfg, 7);
  const double a = evaluate(net, test_set);
  const double b = evaluate(net, test_set);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Training, CacheRoundTrip) {
  const Dataset train_set = make_digits(96, 9);
  const Dataset test_set = make_digits(48, 10);
  const std::string dir = ::testing::TempDir();
  TrainOptions o = quick_options(4);
  o.cache_dir = dir;
  o.cache_key = "cache_test_lenet";
  Sequential a = make_lenet5(1, 10, ScModelConfig::float_model(), 7);
  const TrainResult first = train(a, train_set, test_set, o);
  EXPECT_FALSE(first.from_cache);
  Sequential b = make_lenet5(1, 10, ScModelConfig::float_model(), 7);
  const TrainResult second = train(b, train_set, test_set, o);
  EXPECT_TRUE(second.from_cache);
  EXPECT_NEAR(second.test_accuracy, first.test_accuracy, 1e-9);
  std::filesystem::remove(dir + "/cache_test_lenet.weights");
}

TEST(Training, SequentialSaveLoad) {
  Sequential a = make_cnn4(1, 10, ScModelConfig::float_model(), 3);
  const std::string path = ::testing::TempDir() + "/seq_roundtrip.weights";
  a.save(path);
  Sequential b = make_cnn4(1, 10, ScModelConfig::float_model(), 99);
  ASSERT_TRUE(b.load(path));
  const Dataset d = make_digits(16, 11);
  const Tensor ya = a.forward(d.images, false);
  const Tensor yb = b.forward(d.images, false);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
  std::filesystem::remove(path);
}

TEST(Training, LoadRejectsMismatchedModel) {
  Sequential a = make_lenet5(1, 10, ScModelConfig::float_model(), 3);
  const std::string path = ::testing::TempDir() + "/mismatch.weights";
  a.save(path);
  Sequential b = make_cnn4(1, 10, ScModelConfig::float_model(), 3);
  EXPECT_FALSE(b.load(path));
  std::filesystem::remove(path);
}

TEST(Training, ParameterCountsDifferByModel) {
  Sequential lenet = make_lenet5(1, 10, ScModelConfig::float_model(), 1);
  Sequential cnn4 = make_cnn4(3, 10, ScModelConfig::float_model(), 1);
  Sequential vgg = make_vgg_slim(3, 10, ScModelConfig::float_model(), 1);
  EXPECT_GT(lenet.parameter_count(), 0u);
  EXPECT_GT(vgg.parameter_count(), cnn4.parameter_count());
}

TEST(Training, MaxPoolVariantTrains) {
  // The paper notes max pooling is possible (avg+skipping is just cheaper);
  // the model builder supports it as an extension.
  const Dataset train_set = make_digits(128, 21);
  const Dataset test_set = make_digits(64, 22);
  ScModelConfig cfg = ScModelConfig::float_model();
  cfg.pool = ScModelConfig::PoolMode::kMax;
  Sequential net = make_lenet5(1, 10, cfg, 7);
  bool has_maxpool = false;
  for (std::size_t i = 0; i < net.layer_count(); ++i)
    has_maxpool |= net.layer(i).name() == "maxpool2d";
  EXPECT_TRUE(has_maxpool);
  const TrainResult r = train(net, train_set, test_set, quick_options(10));
  EXPECT_GT(r.test_accuracy, 0.4);
}

TEST(Training, MakeModelByName) {
  for (const char* name : {"cnn4", "lenet5", "vgg"}) {
    Sequential net = make_model(name, 3, 10, ScModelConfig::float_model(), 1);
    EXPECT_GT(net.layer_count(), 0u) << name;
  }
  EXPECT_THROW(make_model("resnet", 3, 10, ScModelConfig::float_model(), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace geo::nn
