// End-to-end hardware equivalence: a two-layer SC network executed entirely
// on the GeoMachine (quantized activations handed from layer to layer
// through the modeled activation memory) must match the nn-level SC layers
// with the same per-layer BN folding — byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "arch/machine.hpp"
#include "nn/quantize.hpp"
#include "nn/sc_layers.hpp"

namespace geo {
namespace {

using arch::ConvShape;
using arch::GeoMachine;
using arch::HwConfig;

std::vector<float> random_vec(std::size_t n, float lo, float hi,
                              unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

// nn-side reference for one machine layer: SC conv, then the same BN fold,
// clamp, and 8-bit quantization the machine's near-memory units apply.
std::vector<std::uint8_t> reference_layer(const GeoMachine& machine,
                                          const ConvShape& shape,
                                          const std::vector<float>& weights,
                                          const std::vector<float>& input,
                                          const std::vector<float>& scale,
                                          const std::vector<float>& shift,
                                          std::uint64_t salt) {
  std::mt19937 rng(1);
  nn::ScConv2d conv(shape.cin, shape.cout, shape.kh, 1, shape.pad, rng,
                    machine.layer_config(shape, salt));
  std::copy(weights.begin(), weights.end(),
            conv.weight().value.data().begin());
  nn::Tensor x({1, shape.cin, shape.hin, shape.win});
  std::copy(input.begin(), input.end(), x.data().begin());
  const nn::Tensor y = conv.forward(x, false);

  std::vector<std::uint8_t> out(y.size());
  const int xy = shape.hout() * shape.wout();
  for (int oc = 0; oc < shape.cout; ++oc)
    for (int i = 0; i < xy; ++i) {
      const std::size_t idx = static_cast<std::size_t>(oc) * xy + i;
      const float bn = scale[static_cast<std::size_t>(oc)] * y[idx] +
                       shift[static_cast<std::size_t>(oc)];
      out[idx] = static_cast<std::uint8_t>(
          nn::quantize_unsigned(std::clamp(bn, 0.0f, 1.0f), 8));
    }
  return out;
}

TEST(MachineNetwork, TwoLayerPipelineMatchesReferenceExactly) {
  HwConfig hw = HwConfig::ulp();
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;
  GeoMachine machine(hw);

  // Layer shapes sized so kernels fit one row (no slicing: the reference
  // computes whole-kernel unions).
  const ConvShape l1 = ConvShape::conv("l1", 3, 8, 6, 3, 1, false);
  const ConvShape l2 = ConvShape::conv("l2", 6, 8, 4, 3, 1, false);

  const auto w1 = random_vec(static_cast<std::size_t>(l1.weights()), -0.7f,
                             0.7f, 11);
  const auto w2 = random_vec(static_cast<std::size_t>(l2.weights()), -0.7f,
                             0.7f, 12);
  const auto input =
      random_vec(static_cast<std::size_t>(l1.activations()), 0.0f, 1.0f, 13);
  const std::vector<float> scale1(6, 1.5f), shift1(6, 0.1f);
  const std::vector<float> scale2(4, 2.0f), shift2(4, -0.05f);

  // ---- machine path -------------------------------------------------------
  const arch::MachineResult m1 =
      machine.run_conv(l1, w1, input, scale1, shift1, /*salt=*/100);
  std::vector<float> act1(m1.activations.size());
  for (std::size_t i = 0; i < act1.size(); ++i)
    act1[i] = nn::dequantize_unsigned(m1.activations[i], 8);
  const arch::MachineResult m2 =
      machine.run_conv(l2, w2, act1, scale2, shift2, /*salt=*/200);

  // ---- nn reference path --------------------------------------------------
  const auto r1 =
      reference_layer(machine, l1, w1, input, scale1, shift1, 100);
  ASSERT_EQ(m1.activations, r1) << "layer 1 bytes must match";

  std::vector<float> ref_act1(r1.size());
  for (std::size_t i = 0; i < r1.size(); ++i)
    ref_act1[i] = nn::dequantize_unsigned(r1[i], 8);
  const auto r2 =
      reference_layer(machine, l2, w2, ref_act1, scale2, shift2, 200);
  EXPECT_EQ(m2.activations, r2) << "layer 2 bytes must match";
}

TEST(MachineNetwork, DifferentSaltsDecorrelateLayers) {
  HwConfig hw = HwConfig::ulp();
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  GeoMachine machine(hw);
  const ConvShape shape = ConvShape::conv("l", 3, 6, 4, 3, 1, false);
  const auto w = random_vec(static_cast<std::size_t>(shape.weights()), -0.7f,
                            0.7f, 21);
  const auto in =
      random_vec(static_cast<std::size_t>(shape.activations()), 0.0f, 1.0f,
                 22);
  const std::vector<float> one(4, 1.0f), zero(4, 0.0f);
  const auto a = machine.run_conv(shape, w, in, one, zero, 1);
  const auto b = machine.run_conv(shape, w, in, one, zero, 2);
  EXPECT_NE(a.counters, b.counters)
      << "layer salt must rotate the generator assignment";
}

}  // namespace
}  // namespace geo
