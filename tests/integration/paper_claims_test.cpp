// Cross-module integration tests pinning the paper's headline claims to
// generous bands (exact values are recorded by the benches and
// EXPERIMENTS.md; these tests guard the *shape*: who wins and roughly by
// how much).
#include <gtest/gtest.h>

#include "baselines/acoustic.hpp"
#include "baselines/eyeriss.hpp"
#include "core/geo.hpp"
#include "nn/models.hpp"
#include "nn/sc_layers.hpp"

namespace geo {
namespace {

using arch::NetworkShape;

// --- Fig. 6: Base vs GEO-GEN vs GEO-GEN-EXEC -------------------------------

TEST(PaperClaims, Fig6LatencyLadder) {
  const auto base = core::GeoAccelerator(core::GeoConfig::base_ulp());
  const auto gen = core::GeoAccelerator(core::GeoConfig::gen_ulp());
  const auto full = core::GeoAccelerator(core::GeoConfig::gen_exec_ulp());
  const NetworkShape net = NetworkShape::cnn4_svhn();
  const double t_base = base.run(net).seconds;
  const double t_gen = gen.run(net).seconds;
  const double t_full = full.run(net).seconds;
  EXPECT_LT(t_gen, t_base) << "generation optimizations speed things up";
  EXPECT_LT(t_full, t_gen) << "execution optimizations stack on top";
  // Paper: GEN = 1.7x, GEN-EXEC = 4.3x vs base.
  EXPECT_GT(t_base / t_gen, 1.2);
  EXPECT_GT(t_base / t_full, 2.5);
  EXPECT_LT(t_base / t_full, 10.0);
}

TEST(PaperClaims, Fig6EnergyLadder) {
  const auto base = core::GeoAccelerator(core::GeoConfig::base_ulp());
  const auto gen = core::GeoAccelerator(core::GeoConfig::gen_ulp());
  const auto full = core::GeoAccelerator(core::GeoConfig::gen_exec_ulp());
  const NetworkShape net = NetworkShape::cnn4_svhn();
  const double e_base = base.run(net).energy_per_frame_j;
  const double e_gen = gen.run(net).energy_per_frame_j;
  const double e_full = full.run(net).energy_per_frame_j;
  EXPECT_LT(e_gen, e_base);
  EXPECT_LT(e_full, e_gen);
  // Paper: 1.6x and 5.2x.
  EXPECT_GT(e_base / e_full, 2.5);
}

TEST(PaperClaims, Fig6AreaNearNeutral) {
  const double a_base =
      core::GeoAccelerator(core::GeoConfig::base_ulp()).area().total();
  const double a_gen =
      core::GeoAccelerator(core::GeoConfig::gen_ulp()).area().total();
  const double a_full =
      core::GeoAccelerator(core::GeoConfig::gen_exec_ulp()).area().total();
  // Paper: GEN -1%, GEN-EXEC +2% relative to base.
  EXPECT_NEAR(a_gen / a_base, 1.0, 0.10);
  EXPECT_NEAR(a_full / a_base, 1.0, 0.10);
}

// --- Table II: ULP vs fixed point and ACOUSTIC -----------------------------

TEST(PaperClaims, TableII_GeoBeatsEyeriss4Bit) {
  const auto geo = core::GeoAccelerator(core::GeoConfig::ulp(32, 64))
                       .run(NetworkShape::cnn4_cifar());
  const auto eye = baselines::EyerissModel(
                       baselines::EyerissConfig::ulp_4bit())
                       .run(NetworkShape::cnn4_cifar());
  const double speedup = geo.frames_per_second / eye.frames_per_second;
  const double efficiency = geo.frames_per_joule / eye.frames_per_joule;
  // Paper: 2.7x throughput, 2.6x energy efficiency.
  EXPECT_GT(speedup, 1.3);
  EXPECT_LT(speedup, 8.0);
  EXPECT_GT(efficiency, 1.2);
}

TEST(PaperClaims, TableII_GeoBeatsAcoustic) {
  const auto geo = core::GeoAccelerator(core::GeoConfig::ulp(32, 64))
                       .run(NetworkShape::cnn4_cifar());
  const auto aco =
      baselines::AcousticModel::ulp(128).run(NetworkShape::cnn4_cifar());
  // Paper: 4.4x faster, 5.3x more energy efficient.
  EXPECT_GT(geo.frames_per_second / aco.frames_per_second, 2.5);
  EXPECT_GT(geo.frames_per_joule / aco.frames_per_joule, 2.5);
}

TEST(PaperClaims, TableII_IsoArea) {
  const double geo =
      core::GeoAccelerator(core::GeoConfig::ulp(32, 64)).area().total();
  const double eye =
      baselines::EyerissModel(baselines::EyerissConfig::ulp_4bit())
          .area_mm2();
  EXPECT_NEAR(geo / eye, 1.0, 0.35) << "comparison points are iso-area";
}

// --- Table III: LP class ----------------------------------------------------

TEST(PaperClaims, TableIII_GeoLpBeatsEyeriss8Bit) {
  const auto geo = core::GeoAccelerator(core::GeoConfig::lp(64, 128))
                       .run(NetworkShape::vgg16());
  const auto eye =
      baselines::EyerissModel(baselines::EyerissConfig::lp_8bit())
          .run(NetworkShape::vgg16());
  // Paper: 5.6x throughput, 2.6x energy efficiency.
  EXPECT_GT(geo.frames_per_second / eye.frames_per_second, 2.0);
  EXPECT_GT(geo.frames_per_joule / eye.frames_per_joule, 1.2);
}

TEST(PaperClaims, TableIII_GeoLpBeatsAcousticLp) {
  const auto geo = core::GeoAccelerator(core::GeoConfig::lp(32, 64))
                       .run(NetworkShape::vgg16());
  const auto aco =
      baselines::AcousticModel::lp(256).run(NetworkShape::vgg16());
  // Paper: 2.4x faster, 1.6x more energy efficient.
  EXPECT_GT(geo.frames_per_second / aco.frames_per_second, 1.5);
  EXPECT_GT(geo.frames_per_joule / aco.frames_per_joule, 1.1);
}

// --- Sec. II-B: progressive generation is nearly free accuracy-wise --------

TEST(PaperClaims, ProgressiveForwardNearlyMatchesNormal) {
  std::mt19937 rng(3);
  nn::ScLayerConfig cfg;
  cfg.stream_len = 64;
  cfg.accum = nn::AccumMode::kPbw;
  nn::ScConv2d normal(3, 4, 3, 1, 1, rng, cfg);
  cfg.progressive = true;
  std::mt19937 rng2(3);
  nn::ScConv2d progressive(3, 4, 3, 1, 1, rng2, cfg);
  progressive.weight().value = normal.weight().value;

  nn::Tensor x({1, 3, 8, 8});
  std::mt19937 xrng(4);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  for (auto& v : x.data()) v = dist(xrng);

  const nn::Tensor yn = normal.forward(x, false);
  const nn::Tensor yp = progressive.forward(x, false);
  double diff = 0;
  for (std::size_t i = 0; i < yn.size(); ++i)
    diff += std::abs(yn[i] - yp[i]);
  diff /= static_cast<double>(yn.size());
  EXPECT_LT(diff, 0.15)
      << "paper: progressive loading costs <0.5% network accuracy";
  EXPECT_GT(diff, 0.0) << "but it is not bit-identical in the early cycles";
}

// --- Sharing ordering at the stream level ----------------------------------

TEST(PaperClaims, SharingCapacityOrdering) {
  const sc::KernelExtents ext{32, 16, 3, 3};
  const sc::SeedAllocator none(sc::Sharing::kNone, 6, ext, 1);
  const sc::SeedAllocator mod(sc::Sharing::kModerate, 6, ext, 1);
  // Moderate sharing needs Cout-times fewer generators — the area win that
  // pays for the shadow buffers in Fig. 6.
  EXPECT_EQ(none.weight_ids(), 32u * mod.weight_ids());
}

}  // namespace
}  // namespace geo
