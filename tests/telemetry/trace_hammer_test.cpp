// Sharded-tracer contract under concurrency: no event is ever dropped (even
// when a flush races recording), B/E pairs stay balanced per thread, tile
// spans from GEO_THREADS=8 machine runs carry flow links back to their
// submitting layer span, and worker tracks are named. Lives outside tier-1
// because it resizes the process pool and churns tracer enable/disable.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/machine.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_model.hpp"
#include "telemetry/telemetry.hpp"

namespace geo {
namespace {

using telemetry::Json;
using telemetry::Tracer;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Parsed view of one rendered trace document.
struct ParsedTrace {
  std::vector<Json> events;

  explicit ParsedTrace(const std::string& doc) {
    auto parsed = Json::parse(doc);
    EXPECT_TRUE(parsed.has_value()) << doc.substr(0, 400);
    if (!parsed.has_value()) return;
    const Json* list = parsed->find("traceEvents");
    EXPECT_NE(list, nullptr);
    if (list != nullptr) events = list->elements();
  }

  std::size_t count_ph(const std::string& ph) const {
    std::size_t n = 0;
    for (const Json& e : events)
      if (const Json* p = e.find("ph"); p != nullptr && p->str() == ph) ++n;
    return n;
  }

  std::size_t count_named(const std::string& ph,
                          const std::string& name) const {
    std::size_t n = 0;
    for (const Json& e : events) {
      const Json* p = e.find("ph");
      const Json* nm = e.find("name");
      if (p != nullptr && nm != nullptr && p->str() == ph &&
          nm->str() == name)
        ++n;
    }
    return n;
  }
};

TEST(TraceHammer, MultiThreadSpansBalancedAndLossless) {
  auto& tracer = Tracer::instance();
  const std::string path = temp_path("geo_trace_hammer.json");
  tracer.disable();
  tracer.enable(path);

  constexpr int kThreads = 8;
  constexpr int kSpans = 300;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&tracer, t] {
      tracer.set_thread_name("hammer-" + std::to_string(t));
      for (int i = 0; i < kSpans; ++i) {
        tracer.begin("hammer.span", "test",
                     {{"i", static_cast<double>(i)}});
        tracer.end("hammer.span", "test");
      }
    });
  for (auto& th : threads) th.join();

  EXPECT_EQ(tracer.event_count(),
            static_cast<std::size_t>(kThreads) * kSpans * 2)
      << "zero dropped events";

  const std::string doc = tracer.render();
  ASSERT_TRUE(telemetry::json_valid(doc));
  ParsedTrace trace(doc);

  // Balanced B/E per tid, and nesting depth never goes negative (E before
  // B would mean a shard merge reordered one thread's events).
  std::map<std::int64_t, std::int64_t> depth;
  for (const Json& e : trace.events) {
    const std::string ph = e.find("ph")->str();
    const std::int64_t tid = e.find("tid")->integer();
    if (ph == "B") ++depth[tid];
    if (ph == "E") {
      --depth[tid];
      EXPECT_GE(depth[tid], 0) << "E before B on tid " << tid;
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;

  // All 8 hammer threads got named metadata tracks.
  EXPECT_EQ(trace.count_named("M", "thread_name") >= kThreads, true);

  EXPECT_TRUE(tracer.flush());
  EXPECT_EQ(tracer.event_count(), 0u);
  tracer.disable();
  std::filesystem::remove(path);
}

TEST(TraceHammer, FlushConcurrentWithRecordingDropsNothing) {
  auto& tracer = Tracer::instance();
  const std::string path = temp_path("geo_trace_flushrace.json");
  tracer.disable();
  tracer.enable(path);

  constexpr int kEvents = 4000;
  std::thread writer([&tracer] {
    for (int i = 0; i < kEvents; ++i)
      tracer.instant("race.marker", "test");
  });

  // Flush continuously while the writer records; every flushed document is
  // read back before the next flush overwrites it, so summing the instant
  // events across documents counts every event exactly once iff the old
  // render-then-clear drop window is really gone.
  std::size_t seen = 0;
  auto drain_once = [&] {
    ASSERT_TRUE(tracer.flush());
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string doc = buf.str();
    if (doc.empty()) return;  // nothing new was written
    ParsedTrace trace(doc);
    seen += trace.count_ph("i");
    std::filesystem::remove(path);  // a no-op flush must not resurrect it
  };
  while (writer.joinable() && seen < kEvents) drain_once();
  writer.join();
  drain_once();  // whatever landed after the last mid-run flush

  EXPECT_EQ(seen, static_cast<std::size_t>(kEvents));
  tracer.disable();
  std::filesystem::remove(path);
}

TEST(TraceHammer, TileSpansCarryFlowLinksAndWorkerNames) {
  fault::ScopedFaultInjection off(nullptr);  // shield from ambient GEO_FAULTS
  exec::ScopedThreads pool(8);

  auto& tracer = Tracer::instance();
  const std::string path = temp_path("geo_trace_tiles.json");
  tracer.disable();
  tracer.enable(path);

  arch::ConvShape shape = arch::ConvShape::conv("trace_l1", 4, 6, 5, 3, 1,
                                                false);
  std::mt19937 rng(77);
  std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
  std::uniform_real_distribution<float> adist(0.0f, 1.0f);
  std::vector<float> weights(static_cast<std::size_t>(shape.weights()));
  for (auto& w : weights) w = wdist(rng);
  std::vector<float> input(static_cast<std::size_t>(shape.activations()));
  for (auto& a : input) a = adist(rng);
  const std::vector<float> ones(static_cast<std::size_t>(shape.cout), 1.0f);
  const std::vector<float> zeros(static_cast<std::size_t>(shape.cout), 0.0f);

  arch::HwConfig hw = arch::HwConfig::ulp();
  hw.accum = nn::AccumMode::kPbw;
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;
  hw.rows = 4;  // tiny MAC array so this small layer splits into 4 tiles
  arch::GeoMachine machine(hw);
  const arch::MachineResult result =
      machine.run_conv(shape, weights, input, ones, zeros, 9);
  EXPECT_TRUE(result.stats.ledger_ok);

  const std::string doc = tracer.render();
  ASSERT_TRUE(telemetry::json_valid(doc));
  ParsedTrace trace(doc);

  // One flow-start under the submitting layer span, one flow-finish inside
  // every tile span — that is the Perfetto arrow from layer to tiles.
  const std::size_t tile_spans = trace.count_named("B", "machine.tile");
  EXPECT_GE(tile_spans, 2u);
  EXPECT_EQ(trace.count_named("s", "machine.tiles"), 1u);
  EXPECT_EQ(trace.count_named("f", "machine.tiles"), tile_spans);
  EXPECT_GE(trace.count_named("B", "machine.run_conv"), 1u);

  // The s/f pair shares one flow id, and every "f" is bound to its
  // enclosing tile span (bp:"e").
  std::int64_t flow_id = -1;
  for (const Json& e : trace.events) {
    const std::string ph = e.find("ph")->str();
    if (ph != "s" && ph != "f") continue;
    const Json* id = e.find("id");
    ASSERT_NE(id, nullptr);
    if (flow_id < 0) flow_id = id->integer();
    EXPECT_EQ(id->integer(), flow_id);
    if (ph == "f") {
      const Json* bp = e.find("bp");
      ASSERT_NE(bp, nullptr);
      EXPECT_EQ(bp->str(), "e");
    }
  }

  // Worker tracks are named geo-worker-N via ph:"M" metadata. Workers name
  // themselves at worker_main entry, which can lag the (main-thread-
  // assisted) run on a loaded box — poll a fresh render until they appear.
  auto count_worker_names = [&tracer] {
    ParsedTrace t(tracer.render());
    std::size_t n = 0;
    for (const Json& e : t.events) {
      const Json* nm = e.find("name");
      const Json* args = e.find("args");
      if (nm == nullptr || args == nullptr || nm->str() != "thread_name")
        continue;
      const Json* value = args->find("name");
      if (value != nullptr && value->str().rfind("geo-worker-", 0) == 0) ++n;
    }
    return n;
  };
  std::size_t named_workers = count_worker_names();
  for (int spin = 0; named_workers < 7 && spin < 500; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    named_workers = count_worker_names();
  }
  EXPECT_GE(named_workers, 7u) << "8-lane pool spawns 7 named workers";

  tracer.disable();
  std::filesystem::remove(path);
}

TEST(TraceHammer, ProcessMetadataUsesRealPidAndSortIndices) {
  auto& tracer = Tracer::instance();
  const std::string path = temp_path("geo_trace_pid.json");
  tracer.disable();
  tracer.enable(path);
  tracer.instant("pid.marker", "test");

  const std::string doc = tracer.render();
  ASSERT_TRUE(telemetry::json_valid(doc));
  const std::string pid_field =
      "\"pid\":" + std::to_string(static_cast<int>(::getpid()));
  EXPECT_NE(doc.find(pid_field), std::string::npos)
      << "events must carry the real pid, not a hardcoded 1";
  ParsedTrace trace(doc);
  EXPECT_EQ(trace.count_named("M", "process_name"), 1u);
  EXPECT_EQ(trace.count_named("M", "process_sort_index"), 1u);
  EXPECT_GE(trace.count_named("M", "thread_sort_index"), 1u);

  // Metadata is synthesized at render time, never counted as buffered
  // events (event_count drives the flush no-op check).
  EXPECT_EQ(tracer.event_count(), 1u);
  tracer.disable();
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace geo
