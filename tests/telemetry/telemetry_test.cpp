#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

namespace geo::telemetry {
namespace {

// ---------------------------------------------------------------------------
// JSON

TEST(Json, EscapesAndDumps) {
  Json obj = Json::object();
  obj.set("s", Json("a\"b\\c\n\t"));
  obj.set("n", Json(1.5));
  obj.set("i", Json(static_cast<std::int64_t>(42)));
  obj.set("b", Json(true));
  obj.set("null", Json());
  Json arr = Json::array();
  arr.push(Json(1.0));
  arr.push(Json("x"));
  obj.set("arr", std::move(arr));
  const std::string s = obj.dump();
  EXPECT_TRUE(json_valid(s)) << s;
  EXPECT_NE(s.find("\"a\\\"b\\\\c\\n\\t\""), std::string::npos);
  EXPECT_NE(s.find("\"i\": 42"), std::string::npos);
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  Json obj = Json::object();
  obj.set("inf", Json(std::numeric_limits<double>::infinity()));
  obj.set("nan", Json(std::numeric_limits<double>::quiet_NaN()));
  const std::string s = obj.dump();
  EXPECT_TRUE(json_valid(s)) << s;
  EXPECT_EQ(s.find("inf\": null") != std::string::npos, true) << s;
}

TEST(Json, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[1, 2.5, -3e4, \"x\", true, false, null]"));
  EXPECT_TRUE(json_valid("{\"a\": {\"b\": [[]]}}"));
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\": 1,}"));
  EXPECT_FALSE(json_valid("[1 2]"));
  EXPECT_FALSE(json_valid("{\"a\": 1} trailing"));
  EXPECT_FALSE(json_valid("\"unterminated"));
}

TEST(Json, RawNodeValidatedAtDump) {
  Json obj = Json::object();
  obj.set("good", Json::raw("[1,2,3]"));
  obj.set("bad", Json::raw("{not json"));
  const std::string s = obj.dump();
  EXPECT_TRUE(json_valid(s)) << s;
  EXPECT_NE(s.find("[1,2,3]"), std::string::npos);
  EXPECT_NE(s.find("\"bad\": null"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(Histogram, PercentilesOfConstantSeriesAreExact) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.observe(2.5);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.min(), 2.5);
  EXPECT_DOUBLE_EQ(h.max(), 2.5);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  // All observations share one bucket whose representative value is clamped
  // to the observed [min, max], so every percentile is exact.
  EXPECT_DOUBLE_EQ(h.percentile(50), 2.5);
  EXPECT_DOUBLE_EQ(h.percentile(99), 2.5);
}

TEST(Histogram, PercentilesAreMonotoneAndBracketed) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.observe(i * 1e-4);  // 0.0001 .. 1.0
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 10000);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  // Log2 buckets are coarse but the median of U(0,1] must land well away
  // from the tails.
  EXPECT_NEAR(s.p50, 0.5, 0.3);
  EXPECT_GT(s.p95, 0.5);
}

TEST(Histogram, HandlesZeroNegativeAndExtremeValues) {
  Histogram h;
  h.observe(0.0);
  h.observe(-1.0);
  h.observe(1e300);
  h.observe(1e-300);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e300);
  // Percentiles stay within the observed range even for under/overflow
  // buckets.
  EXPECT_GE(h.percentile(1), h.min());
  EXPECT_LE(h.percentile(99), h.max());
}

TEST(Histogram, EmptySnapshotIsZero) {
  Histogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Counter, ThreadedIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, ReturnsStableReferencesAndSortedSnapshot) {
  auto& reg = MetricsRegistry::instance();
  Counter& a = reg.counter("test.registry.zz");
  Counter& b = reg.counter("test.registry.aa");
  Counter& a2 = reg.counter("test.registry.zz");
  EXPECT_EQ(&a, &a2);
  a.add(3);
  b.add(1);
  reg.gauge("test.registry.gauge").set(2.5);
  reg.histogram("test.registry.hist").observe(1.0);

  const auto snap = reg.snapshot();
  std::vector<std::string> names;
  for (const auto& m : snap) names.push_back(m.name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  bool found = false;
  for (const auto& m : snap)
    if (m.name == "test.registry.zz") {
      found = true;
      EXPECT_EQ(m.kind, MetricKind::kCounter);
      EXPECT_DOUBLE_EQ(m.value, 3.0);
    }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Exporters

TEST(Export, JsonAndCsvRenderTheRegistry) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.export.counter").add(7);
  reg.gauge("test.export.gauge").set(1.25);
  auto& h = reg.histogram("test.export.hist");
  for (int i = 0; i < 10; ++i) h.observe(0.5);

  const Json j = metrics_to_json(reg);
  const std::string s = j.dump();
  EXPECT_TRUE(json_valid(s)) << s;
  EXPECT_NE(s.find("\"test.export.counter\""), std::string::npos);
  EXPECT_NE(s.find("\"p99\""), std::string::npos);

  const std::string csv = metrics_to_csv(reg);
  EXPECT_NE(csv.find("name,kind,value,count,sum,min,max,mean,p50,p95,p99"),
            std::string::npos);
  EXPECT_NE(csv.find("test.export.counter,counter,7"), std::string::npos);
  EXPECT_NE(csv.find("test.export.hist,histogram"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracing

TEST(Tracer, DisabledPathRecordsNothing) {
  auto& tracer = Tracer::instance();
  tracer.disable();
  EXPECT_FALSE(tracer.enabled());
  tracer.begin("noop", "test");
  tracer.end("noop", "test");
  { ScopedTimer t("test.tracer.noop", "test"); }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Tracer, RendersBalancedWellFormedTrace) {
  auto& tracer = Tracer::instance();
  const std::string path =
      (std::filesystem::temp_directory_path() / "geo_telemetry_test.json")
          .string();
  tracer.enable(path);
  {
    ScopedTimer outer("test.trace.outer", "test", {{"layer", 3.0}});
    ScopedTimer inner("test.trace.inner", "test");
  }
  tracer.instant("test.trace.marker", "test");
  tracer.counter("test.trace.series", 42.0);
  EXPECT_EQ(tracer.event_count(), 6u);  // 2xB + 2xE + i + C

  const std::string doc = tracer.render();
  EXPECT_TRUE(json_valid(doc)) << doc;
  auto count = [&doc](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = doc.find(needle); pos != std::string::npos;
         pos = doc.find(needle, pos + needle.size()))
      ++n;
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), 2u);
  EXPECT_EQ(count("\"ph\":\"E\""), 2u);
  EXPECT_EQ(count("\"ph\":\"i\""), 1u);
  EXPECT_EQ(count("\"ph\":\"C\""), 1u);
  EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"layer\":3"), std::string::npos);

  EXPECT_TRUE(tracer.flush());
  std::ifstream in(path);
  std::stringstream file;
  file << in.rdbuf();
  EXPECT_TRUE(json_valid(file.str()));
  EXPECT_EQ(tracer.event_count(), 0u) << "flush clears the buffer";

  tracer.disable();
  std::filesystem::remove(path);
}

TEST(ScopedTimer, ObservesElapsedIntoHistogram) {
  Histogram h;
  {
    ScopedTimer t(h, "test.scoped.hist", "test");
  }
  EXPECT_EQ(h.count(), 1);
  EXPECT_GE(h.max(), 0.0);
  EXPECT_LT(h.max(), 10.0) << "elapsed seconds, not nanoseconds";
}

TEST(ScopedTimer, NamedOverloadUsesRegistry) {
  auto& reg = MetricsRegistry::instance();
  auto& h = reg.histogram("test.scoped.named");
  const std::int64_t before = h.count();
  {
    ScopedTimer t("test.scoped.named", "test");
  }
  EXPECT_EQ(h.count(), before + 1);
}

}  // namespace
}  // namespace geo::telemetry
