// Bench regression gate core: glob matching, numeric flattening, and the
// tolerance-rule diff that geo_report / scripts/bench_diff.py expose. The
// acceptance cases mirror the CI gate: identical documents diff clean, a
// 10% cycle inflation is caught, an accuracy drop is caught, improvements
// and wall-clock noise are not flagged, and a vanished metric is treated
// as lost coverage.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace geo::telemetry {
namespace {

Json parse_or_die(const char* text) {
  auto parsed = Json::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return parsed.has_value() ? *parsed : Json::object();
}

DiffResult diff(const char* base, const char* current) {
  return diff_documents(parse_or_die(base), parse_or_die(current),
                        default_diff_rules());
}

const MetricDelta* find_delta(const DiffResult& r, const std::string& path) {
  for (const MetricDelta& d : r.deltas)
    if (d.path == path) return &d;
  return nullptr;
}

TEST(GlobMatch, CoversStarQuestionAndBacktracking) {
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*", "anything.at.all"));
  EXPECT_TRUE(glob_match("*cycles*", "metrics.counters.total_cycles"));
  EXPECT_TRUE(glob_match("*cycles*", "cycles"));
  EXPECT_FALSE(glob_match("*cycles*", "metrics.counters.energy"));
  EXPECT_TRUE(glob_match("attr.layers.?.total_cycles",
                         "attr.layers.3.total_cycles"));
  EXPECT_FALSE(glob_match("attr.layers.?.total_cycles",
                          "attr.layers.12.total_cycles"));
  // '*' must backtrack: the first 'b' after the star is not the right one.
  EXPECT_TRUE(glob_match("*a*b", "xaxbxb"));
  EXPECT_FALSE(glob_match("*a*b", "xaxbx"));
  EXPECT_FALSE(glob_match("abc", "ab"));
  EXPECT_FALSE(glob_match("ab", "abc"));
}

TEST(BenchDiff, FlattenWalksObjectsArraysAndBools) {
  std::vector<std::pair<std::string, double>> flat;
  flatten_numeric(
      parse_or_die(R"({"a":{"b":2},"list":[1,{"c":3}],"ok":true,"s":"x"})"),
      "", flat);
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_EQ(flat[0], (std::pair<std::string, double>{"a.b", 2.0}));
  EXPECT_EQ(flat[1], (std::pair<std::string, double>{"list.0", 1.0}));
  EXPECT_EQ(flat[2], (std::pair<std::string, double>{"list.1.c", 3.0}));
  EXPECT_EQ(flat[3], (std::pair<std::string, double>{"ok", 1.0}))
      << "bools flatten to 1/0; strings are skipped";
}

TEST(BenchDiff, IdenticalDocumentsDiffClean) {
  const char* doc = R"({"metrics":{"counters":{"machine":{
      "total_cycles":123456,"stall_cycles":1000}}},
      "attr":{"generation_cycles":900,"ledger_ok":true},
      "accuracy":97.8})";
  const DiffResult r = diff(doc, doc);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.regressions, 0u);
  EXPECT_EQ(r.improvements, 0u);
  EXPECT_EQ(r.compared, 5u);
}

TEST(BenchDiff, TenPercentCycleInflationIsCaught) {
  const DiffResult r = diff(R"({"machine":{"total_cycles":1000}})",
                            R"({"machine":{"total_cycles":1100}})");
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.regressions, 1u);
  const MetricDelta* d = find_delta(r, "machine.total_cycles");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, DeltaKind::kRegression);

  // 1% stays inside the 2% relative tolerance.
  EXPECT_TRUE(diff(R"({"machine":{"total_cycles":1000}})",
                   R"({"machine":{"total_cycles":1010}})")
                  .ok());
}

TEST(BenchDiff, CycleReductionIsAnImprovementNotARegression) {
  const DiffResult r = diff(R"({"machine":{"total_cycles":1000}})",
                            R"({"machine":{"total_cycles":900}})");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.improvements, 1u);
  EXPECT_EQ(find_delta(r, "machine.total_cycles")->kind,
            DeltaKind::kImprovement);
}

TEST(BenchDiff, AccuracyDropIsCaughtAndGainIsNot) {
  // 0.25-percentage-point absolute window.
  EXPECT_FALSE(diff(R"({"eval":{"accuracy":98.0}})",
                    R"({"eval":{"accuracy":97.0}})")
                   .ok());
  EXPECT_TRUE(diff(R"({"eval":{"accuracy":98.0}})",
                   R"({"eval":{"accuracy":97.9}})")
                  .ok());
  const DiffResult gain = diff(R"({"eval":{"accuracy":97.0}})",
                               R"({"eval":{"accuracy":98.0}})");
  EXPECT_TRUE(gain.ok());
  EXPECT_EQ(gain.improvements, 1u);
}

TEST(BenchDiff, LedgerOkGoingFalseIsARegression) {
  const DiffResult r = diff(R"({"attr":{"ledger_ok":true}})",
                            R"({"attr":{"ledger_ok":false}})");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(find_delta(r, "attr.ledger_ok")->kind, DeltaKind::kRegression);
}

TEST(BenchDiff, WallClockMeasurementsAreIgnored) {
  const DiffResult r = diff(
      R"({"metrics":{"histograms":{"machine.tile":{"p50":1.0}}},
          "machine":{"stream_table_build_ns":100,"images_per_s":50.0}})",
      R"({"metrics":{"histograms":{"machine.tile":{"p50":9.0}}},
          "machine":{"stream_table_build_ns":1e9,"images_per_s":1.0}})");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.compared, 0u);
  EXPECT_EQ(r.ignored, 3u);
}

TEST(BenchDiff, RunShapeDiagnosticsAreIgnoredEvenWhenRemoved) {
  // A warm trained-model cache skips training entirely: train.* metrics
  // vanish and stream-table hit counts collapse. Neither is a regression —
  // but the cycle ledger right next to them still gates.
  const DiffResult r = diff(
      R"({"metrics":{
            "counters":{"train.batches":960,
                        "machine.stream_table_hits":20705600,
                        "machine.act_streams_generated":12544,
                        "machine.wgt_buffer_fills":32,
                        "machine.total_cycles":1000},
            "gauges":{"train.accuracy":0.71875}}})",
      R"({"metrics":{
            "counters":{"machine.stream_table_hits":476809,
                        "machine.act_streams_generated":12800,
                        "machine.wgt_buffer_fills":48,
                        "machine.total_cycles":1000}}})");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.compared, 1u);  // only the cycle counter
  EXPECT_EQ(r.ignored, 5u);

  // ...and the same warm-cache run with an inflated ledger still fails.
  const DiffResult bad = diff(
      R"({"metrics":{"counters":{"train.batches":960,
                                 "machine.total_cycles":1000}}})",
      R"({"metrics":{"counters":{"machine.total_cycles":1100}}})");
  EXPECT_FALSE(bad.ok());
}

TEST(BenchDiff, RemovedMetricIsARegressionAddedIsNot) {
  const DiffResult removed = diff(R"({"a":{"total_cycles":10,"extra":1}})",
                                  R"({"a":{"total_cycles":10}})");
  EXPECT_FALSE(removed.ok());
  EXPECT_EQ(find_delta(removed, "a.extra")->kind, DeltaKind::kRemoved);

  const DiffResult added = diff(R"({"a":{"total_cycles":10}})",
                                R"({"a":{"total_cycles":10,"new_metric":5}})");
  EXPECT_TRUE(added.ok());
  EXPECT_EQ(find_delta(added, "a.new_metric")->kind, DeltaKind::kAdded);
}

TEST(BenchDiff, CatchAllRuleGatesUnknownMetricsTwoSided) {
  // No named rule matches "widgets": the trailing 2% two-sided rule does.
  EXPECT_FALSE(diff(R"({"widgets":100})", R"({"widgets":103})").ok());
  EXPECT_FALSE(diff(R"({"widgets":100})", R"({"widgets":97})").ok());
  EXPECT_TRUE(diff(R"({"widgets":100})", R"({"widgets":101})").ok());
}

TEST(BenchDiff, SummaryNamesTheRegressedPath) {
  const DiffResult r = diff(R"({"machine":{"total_cycles":1000}})",
                            R"({"machine":{"total_cycles":1100}})");
  const std::string text = summarize_diff(r);
  EXPECT_NE(text.find("machine.total_cycles"), std::string::npos) << text;
  EXPECT_NE(text.find("1 regression"), std::string::npos) << text;
}

TEST(BenchDiff, JsonParseRoundTripsRenderedDocuments) {
  // The tree parser must read back what Json::dump writes (the diff core
  // consumes real BENCH_*.json files produced by Json::dump).
  Json doc = Json::object();
  doc.set("int", Json(static_cast<std::int64_t>(42)));
  doc.set("neg", Json(-1.5));
  doc.set("flag", Json(true));
  doc.set("name", Json("esc \"quote\" \\ slash\n"));
  Json arr = Json::array();
  arr.push(Json(1.0));
  arr.push(Json::object());
  doc.set("arr", std::move(arr));

  auto back = Json::parse(doc.dump(2));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->find("int")->integer(), 42);
  EXPECT_DOUBLE_EQ(back->find("neg")->number(), -1.5);
  EXPECT_TRUE(back->find("flag")->boolean());
  EXPECT_EQ(back->find("name")->str(), "esc \"quote\" \\ slash\n");
  EXPECT_EQ(back->find("arr")->elements().size(), 2u);

  EXPECT_FALSE(Json::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(Json::parse("").has_value());
}

}  // namespace
}  // namespace geo::telemetry
