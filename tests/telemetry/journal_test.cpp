// Structured event journal: bounded ring semantics (wrap, drop accounting,
// monotone seq), JSONL flush format, and the runtime hooks that feed it
// (checkpoint commits, stream-table builds, resilience retries). Lives in
// the telemetry suite because it churns the process-wide Journal singleton.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "fault/fault_model.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/resilience.hpp"
#include "sc/stream_table.hpp"
#include "telemetry/telemetry.hpp"

namespace geo {
namespace {

using telemetry::Journal;
using telemetry::JournalEntry;
using telemetry::Json;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Fresh journal writing to `name`; capacity must be explicit because the
// singleton keeps its last capacity across enable/disable cycles.
std::string arm_journal(const char* name, std::size_t capacity) {
  const std::string path = temp_path(name);
  std::filesystem::remove(path);
  auto& journal = Journal::instance();
  journal.disable();
  journal.enable(path, capacity);
  return path;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) lines.push_back(line);
  return lines;
}

bool has_kind(const std::vector<JournalEntry>& entries,
              const std::string& kind) {
  for (const JournalEntry& e : entries)
    if (e.kind == kind) return true;
  return false;
}

TEST(Journal, RingWrapsKeepingNewestAndCountingDrops) {
  auto& journal = Journal::instance();
  const std::string path = arm_journal("geo_journal_wrap.jsonl", 16);

  for (int i = 0; i < 40; ++i)
    journal.record("test.tick", "t" + std::to_string(i),
                   {{"i", static_cast<double>(i)}});

  EXPECT_EQ(journal.event_count(), 16u);
  EXPECT_EQ(journal.dropped(), 24u);

  const std::vector<JournalEntry> kept = journal.snapshot();
  ASSERT_EQ(kept.size(), 16u);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].seq, 24u + i) << "oldest retained entry is seq 24";
    EXPECT_EQ(kept[i].label, "t" + std::to_string(24 + i));
  }

  journal.disable();
  std::filesystem::remove(path);
}

TEST(Journal, FlushEmitsJsonlAndSeqStaysMonotoneAcrossFlushes) {
  auto& journal = Journal::instance();
  const std::string path = arm_journal("geo_journal_flush.jsonl", 64);

  journal.record("test.alpha", "one", {{"x", 1.0}, {"y", 2.5}}, "note-a");
  journal.record("test.alpha", "two");
  ASSERT_TRUE(journal.flush());
  EXPECT_EQ(journal.event_count(), 0u);
  journal.record("test.beta", "three", {}, "note-b");
  ASSERT_TRUE(journal.flush());

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto parsed = Json::parse(lines[i]);
    ASSERT_TRUE(parsed.has_value()) << lines[i];
    EXPECT_EQ(parsed->find("seq")->integer(), static_cast<std::int64_t>(i))
        << "seq keeps counting across flushes";
    EXPECT_GE(parsed->find("ts_us")->number(), 0.0);
    EXPECT_GE(parsed->find("tid")->integer(), 1);
    ASSERT_NE(parsed->find("kind"), nullptr);
    ASSERT_NE(parsed->find("label"), nullptr);
  }
  auto first = Json::parse(lines[0]);
  EXPECT_EQ(first->find("kind")->str(), "test.alpha");
  EXPECT_EQ(first->find("note")->str(), "note-a");
  const Json* args = first->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->find("x")->number(), 1.0);
  EXPECT_DOUBLE_EQ(args->find("y")->number(), 2.5);
  auto second = Json::parse(lines[1]);
  EXPECT_EQ(second->find("note"), nullptr) << "empty note is omitted";
  EXPECT_EQ(second->find("args"), nullptr) << "empty args is omitted";

  journal.disable();
  std::filesystem::remove(path);
}

TEST(Journal, DisabledPathRecordsNothing) {
  auto& journal = Journal::instance();
  journal.disable();
  ASSERT_FALSE(journal.enabled());
  journal.record("test.ghost", "never");
  EXPECT_EQ(journal.event_count(), 0u);
  EXPECT_TRUE(journal.flush()) << "flush while disabled is a no-op success";
}

TEST(Journal, CheckpointCommitIsJournaled) {
  auto& journal = Journal::instance();
  const std::string jpath = arm_journal("geo_journal_ckpt.jsonl", 64);
  const std::string ckpt = temp_path("geo_journal_ckpt.bin");

  const std::string payload = "journal-hook-payload";
  ASSERT_TRUE(resilience::write_checkpoint(ckpt, payload).ok());

  const std::vector<JournalEntry> entries = journal.snapshot();
  ASSERT_TRUE(has_kind(entries, "checkpoint.commit"));
  for (const JournalEntry& e : entries) {
    if (e.kind != "checkpoint.commit") continue;
    EXPECT_EQ(e.label, ckpt);
    auto args = Json::parse(e.args_json);
    ASSERT_TRUE(args.has_value());
    // The journaled size is the full image: header (24 bytes) + payload.
    EXPECT_GE(args->find("bytes")->number(),
              static_cast<double>(payload.size()));
  }

  journal.disable();
  std::filesystem::remove(jpath);
  std::filesystem::remove(ckpt);
}

TEST(Journal, StreamTableBuildIsJournaled) {
  auto& journal = Journal::instance();
  const std::string jpath = arm_journal("geo_journal_table.jsonl", 64);

  // A seed no other test uses, so this acquire is a first build (a cache
  // hit records nothing).
  sc::SeedSpec spec;
  spec.bits = 8;
  spec.seed = 0xBEEF;
  auto* table =
      sc::StreamTableRegistry::instance().acquire(sc::RngKind::kLfsr, spec, 64);
  ASSERT_NE(table, nullptr);

  const std::vector<JournalEntry> entries = journal.snapshot();
  ASSERT_TRUE(has_kind(entries, "stream_table.build"));
  for (const JournalEntry& e : entries) {
    if (e.kind != "stream_table.build") continue;
    EXPECT_NE(e.label.find("/b8/L64"), std::string::npos) << e.label;
    auto args = Json::parse(e.args_json);
    ASSERT_TRUE(args.has_value());
    EXPECT_DOUBLE_EQ(args->find("bytes")->number(),
                     static_cast<double>(table->bytes()));
    EXPECT_GE(args->find("build_ns")->number(), 0.0);
  }

  journal.disable();
  std::filesystem::remove(jpath);
}

TEST(Journal, ResilienceRetriesAndAcceptanceAreJournaled) {
  auto& journal = Journal::instance();
  const std::string jpath = arm_journal("geo_journal_retry.jsonl", 256);

  // Transient-recovery recipe from the resilience suite: rare re-rolled
  // faults force at least one retry that then recovers at the native rung.
  arch::ConvShape shape = arch::ConvShape::conv("t", 4, 6, 5, 3, 1, false);
  std::mt19937 rng(77);
  std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
  std::uniform_real_distribution<float> adist(0.0f, 1.0f);
  std::vector<float> weights(static_cast<std::size_t>(shape.weights()));
  for (auto& w : weights) w = wdist(rng);
  std::vector<float> input(static_cast<std::size_t>(shape.activations()));
  for (auto& a : input) a = adist(rng);
  const std::vector<float> ones(static_cast<std::size_t>(shape.cout), 1.0f);
  const std::vector<float> zeros(static_cast<std::size_t>(shape.cout), 0.0f);

  arch::HwConfig hw = arch::HwConfig::ulp();
  hw.accum = nn::AccumMode::kPbw;
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;

  fault::FaultConfig cfg;
  cfg.sram_error_rate = 2e-4;
  cfg.sram_burst = 2;
  cfg.ecc = fault::EccMode::kSecded;
  cfg.transient = true;
  cfg.rng_seed = 1;
  fault::ScopedFaultInjection inject(cfg);

  resilience::RetryPolicy policy;
  policy.retries = 8;
  resilience::ResilientExecutor exec(hw, policy);
  auto r = exec.run_conv(shape, weights, input, ones, zeros, 9, "transient");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  ASSERT_GE(exec.report().layers[0].tiles_retried, 1);

  const std::vector<JournalEntry> entries = journal.snapshot();
  EXPECT_TRUE(has_kind(entries, "resilience.retry"));
  EXPECT_TRUE(has_kind(entries, "resilience.accept"));
  for (const JournalEntry& e : entries) {
    if (e.kind != "resilience.retry") continue;
    EXPECT_EQ(e.label, "transient");
    auto args = Json::parse(e.args_json);
    ASSERT_TRUE(args.has_value());
    EXPECT_GE(args->find("tile")->number(), 0.0);
    EXPECT_GE(args->find("attempt")->number(), 0.0);
    EXPECT_GE(args->find("detections")->number(), 1.0);
  }

  journal.disable();
  std::filesystem::remove(jpath);
}

// A process dying on a fatal signal must not take the retained journal
// window with it: enable() installs handlers that best-effort flush with
// raw write(2) before re-raising the default disposition.
TEST(Journal, FatalSignalFlushPersistsRetainedWindow) {
  const std::string path = temp_path("geo_journal_signal.jsonl");
  std::filesystem::remove(path);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: record without flushing, then die by SIGTERM. The fatal-signal
    // handler is the only thing standing between these entries and the
    // ring's oblivion.
    auto& journal = Journal::instance();
    journal.disable();
    journal.enable(path, 64);
    journal.record("test.signal", "window", {{"i", 1.0}}, "pre-crash");
    journal.record("test.signal", "window", {{"i", 2.0}});
    std::raise(SIGTERM);
    _exit(97);  // unreachable: the handler re-raises with SIG_DFL
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child must die by signal, not exit";
  EXPECT_EQ(WTERMSIG(status), SIGTERM);

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u) << "both retained entries must be persisted";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto parsed = Json::parse(lines[i]);
    ASSERT_TRUE(parsed.has_value()) << lines[i];
    EXPECT_EQ(parsed->find("seq")->integer(), static_cast<std::int64_t>(i));
    EXPECT_EQ(parsed->find("kind")->str(), "test.signal");
    EXPECT_EQ(parsed->find("label")->str(), "window");
    const Json* args = parsed->find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_DOUBLE_EQ(args->find("i")->number(), static_cast<double>(i + 1));
  }
  auto first = Json::parse(lines[0]);
  EXPECT_EQ(first->find("note")->str(), "pre-crash");

  std::filesystem::remove(path);
}

}  // namespace
}  // namespace geo
