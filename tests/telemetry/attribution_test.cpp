// Per-layer cycle attribution: the bucket split itself, the process-wide
// ledger fed by ConvExecution::finish(), its attr.* gauge mirror and JSON
// form, and the two load-bearing invariants — buckets partition
// total_cycles at every GEO_THREADS, and fault-recovery stalls land in the
// stall bucket (not generation). Lives in the telemetry suite because it
// resets the global ledger and resizes the pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "arch/attribution.hpp"
#include "arch/machine.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_model.hpp"
#include "resilience/resilience.hpp"
#include "telemetry/telemetry.hpp"

namespace geo::arch {
namespace {

struct Fixture {
  ConvShape shape;
  std::vector<float> weights, input, ones, zeros;

  explicit Fixture(const char* name) {
    shape = ConvShape::conv(name, 4, 6, 5, 3, 1, false);
    std::mt19937 rng(77);
    std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(shape.weights()));
    for (auto& w : weights) w = wdist(rng);
    input.resize(static_cast<std::size_t>(shape.activations()));
    for (auto& a : input) a = adist(rng);
    ones.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    zeros.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }
};

HwConfig small_hw() {
  HwConfig hw = HwConfig::ulp();
  hw.accum = nn::AccumMode::kPbw;
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;
  return hw;
}

TEST(Attribution, SplitsLedgerIntoFourBucketsThatPartitionTotal) {
  MachineStats st;
  st.passes = 2;
  st.compute_cycles = 100;
  st.stall_cycles = 30;
  st.retry_stall_cycles = 10;
  st.nearmem_cycles = 20;
  st.total_cycles = 150;
  st.ledger_ok = true;

  const CycleAttribution a = attribute(st);
  EXPECT_EQ(a.execution_cycles, 100);
  EXPECT_EQ(a.generation_cycles, 20) << "stall minus fault-recovery share";
  EXPECT_EQ(a.stall_cycles, 10);
  EXPECT_EQ(a.memory_cycles, 20);
  EXPECT_EQ(a.total_cycles, 150);
  EXPECT_EQ(a.passes, 2);
  EXPECT_TRUE(a.reconciles());
  EXPECT_TRUE(a.ledger_ok);
}

TEST(Attribution, RejectsUnreconcilableStats) {
  MachineStats st;
  st.compute_cycles = 100;
  st.stall_cycles = 5;
  st.retry_stall_cycles = 10;  // more retry stall than stall: impossible
  st.nearmem_cycles = 0;
  st.total_cycles = 105;
  st.ledger_ok = true;
  const CycleAttribution a = attribute(st);
  EXPECT_FALSE(a.reconciles()) << "negative generation bucket";
  EXPECT_FALSE(a.ledger_ok);

  MachineStats off = st;
  off.retry_stall_cycles = 0;
  off.total_cycles = 999;  // buckets no longer sum to total
  EXPECT_FALSE(attribute(off).reconciles());
}

TEST(Attribution, AccumulationAddsFieldwiseAndAndsLedger) {
  CycleAttribution a;
  a.generation_cycles = 1;
  a.execution_cycles = 2;
  a.stall_cycles = 3;
  a.memory_cycles = 4;
  a.total_cycles = 10;
  a.passes = 1;
  CycleAttribution b = a;
  b.ledger_ok = false;
  a += b;
  EXPECT_EQ(a.generation_cycles, 2);
  EXPECT_EQ(a.execution_cycles, 4);
  EXPECT_EQ(a.stall_cycles, 6);
  EXPECT_EQ(a.memory_cycles, 8);
  EXPECT_EQ(a.total_cycles, 20);
  EXPECT_EQ(a.passes, 2);
  EXPECT_FALSE(a.ledger_ok) << "one bad layer poisons the rollup";
}

TEST(Attribution, MachineRunsFeedLedgerIdenticallyAtAnyThreadCount) {
  fault::ScopedFaultInjection off(nullptr);
  const Fixture f("attr_l1");
  const HwConfig hw = small_hw();
  auto& ledger = AttributionLedger::instance();

  CycleAttribution serial, parallel;
  {
    exec::ScopedThreads pool(1);
    ledger.reset();
    GeoMachine machine(hw);
    const MachineResult r =
        machine.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9);
    ASSERT_TRUE(r.stats.ledger_ok);
    serial = ledger.total();
    // The run's ledger lands in the buckets untouched: no faults means the
    // whole stall budget is generation cost.
    EXPECT_EQ(serial.execution_cycles, r.stats.compute_cycles);
    EXPECT_EQ(serial.generation_cycles, r.stats.stall_cycles);
    EXPECT_EQ(serial.stall_cycles, 0);
    EXPECT_EQ(serial.memory_cycles, r.stats.nearmem_cycles);
    EXPECT_EQ(serial.total_cycles, r.stats.total_cycles);
  }
  {
    exec::ScopedThreads pool(8);
    ledger.reset();
    GeoMachine machine(hw);
    const MachineResult r =
        machine.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9);
    ASSERT_TRUE(r.stats.ledger_ok);
    parallel = ledger.total();
  }

  EXPECT_TRUE(serial.reconciles());
  EXPECT_TRUE(parallel.reconciles());
  EXPECT_EQ(serial.generation_cycles, parallel.generation_cycles);
  EXPECT_EQ(serial.execution_cycles, parallel.execution_cycles);
  EXPECT_EQ(serial.stall_cycles, parallel.stall_cycles);
  EXPECT_EQ(serial.memory_cycles, parallel.memory_cycles);
  EXPECT_EQ(serial.total_cycles, parallel.total_cycles);

  // Per-layer table keys off the shape name, and the attr.* gauges mirror
  // the running totals.
  const auto layers = AttributionLedger::instance().layers();
  ASSERT_EQ(layers.size(), 1u);
  EXPECT_EQ(layers[0].first, "attr_l1");
  auto& reg = telemetry::MetricsRegistry::instance();
  EXPECT_DOUBLE_EQ(reg.gauge("attr.total_cycles").value(),
                   static_cast<double>(parallel.total_cycles));
  EXPECT_DOUBLE_EQ(reg.gauge("attr.execution_cycles").value(),
                   static_cast<double>(parallel.execution_cycles));
  AttributionLedger::instance().reset();
}

TEST(Attribution, RetryBackoffLandsInStallBucketNotGeneration) {
  const Fixture f("attr_retry");
  const HwConfig hw = small_hw();

  fault::FaultConfig cfg;
  cfg.sram_error_rate = 2e-4;
  cfg.sram_burst = 2;
  cfg.ecc = fault::EccMode::kSecded;
  cfg.transient = true;
  cfg.rng_seed = 1;
  fault::ScopedFaultInjection inject(cfg);

  auto& ledger = AttributionLedger::instance();
  ledger.reset();
  resilience::RetryPolicy policy;
  policy.retries = 8;
  resilience::ResilientExecutor exec(hw, policy);
  auto r = exec.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9,
                         "attr_retry");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  ASSERT_GE(exec.report().layers[0].tiles_retried, 1);

  const CycleAttribution total = ledger.total();
  EXPECT_TRUE(total.reconciles())
      << "buckets must still partition total_cycles under retries";
  EXPECT_GT(total.stall_cycles, 0) << "retry backoff is fault-recovery cost";
  EXPECT_GE(total.generation_cycles, 0)
      << "generation never absorbs (or goes negative from) retry stalls";
  EXPECT_GT(total.execution_cycles, 0);
  ledger.reset();
}

TEST(Attribution, JsonFormCarriesTotalsAndPerLayerRows) {
  fault::ScopedFaultInjection off(nullptr);
  const Fixture f("attr_json");
  auto& ledger = AttributionLedger::instance();
  ledger.reset();
  GeoMachine machine(small_hw());
  machine.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9);

  const telemetry::Json doc = attribution_to_json(ledger);
  const CycleAttribution total = ledger.total();
  EXPECT_EQ(doc.find("total_cycles")->integer(), total.total_cycles);
  EXPECT_EQ(doc.find("generation_cycles")->integer(),
            total.generation_cycles);
  EXPECT_TRUE(doc.find("ledger_ok")->boolean());
  const telemetry::Json* layers = doc.find("layers");
  ASSERT_NE(layers, nullptr);
  ASSERT_EQ(layers->elements().size(), 1u);
  const telemetry::Json& row = layers->elements()[0];
  EXPECT_EQ(row.find("layer")->str(), "attr_json");
  EXPECT_EQ(row.find("execution_cycles")->integer(),
            total.execution_cycles);

  // The rendered document round-trips through the parser the diff gate
  // uses, so bench JSON attr blocks are gateable as-is.
  auto back = telemetry::Json::parse(doc.dump(2));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->find("total_cycles")->integer(), total.total_cycles);
  ledger.reset();
}

}  // namespace
}  // namespace geo::arch
