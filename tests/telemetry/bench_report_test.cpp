// BenchReport validation: every BENCH_*.json the harness writes must pass
// the telemetry JSON validator and carry the geo-bench-v1 schema marker;
// malformed documents fail the bench instead of landing on disk.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "../../bench/bench_util.hpp"

namespace geo::bench {
namespace {

TEST(BenchReport, FreshReportValidates) {
  BenchReport report("unit");
  report.set("answer", 42.0);
  EXPECT_TRUE(BenchReport::validate(report.root().dump()));
}

TEST(BenchReport, ValidateRejectsMalformedJson) {
  EXPECT_FALSE(BenchReport::validate(""));
  EXPECT_FALSE(BenchReport::validate("not json"));
  EXPECT_FALSE(BenchReport::validate("{\"bench\": "));
  EXPECT_FALSE(BenchReport::validate("{\"bench\": \"x\" \"y\": 1}"));
}

TEST(BenchReport, ValidateRequiresSchemaMarker) {
  // Structurally valid JSON without the schema tag is not a bench report.
  EXPECT_FALSE(BenchReport::validate("{\"bench\": \"x\"}"));
  EXPECT_FALSE(
      BenchReport::validate("{\"schema\": \"geo-bench-v0\", \"x\": 1}"));
}

TEST(BenchReport, WriteEmitsValidatedArtifact) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "geo_bench_report_test";
  std::filesystem::create_directories(dir);
  setenv("GEO_BENCH_JSON_DIR", dir.c_str(), 1);
  setenv("GEO_BENCH_JSON", "1", 1);

  BenchReport report("unit_write");
  report.set("scalar", 1.5);
  EXPECT_TRUE(report.write());

  const std::filesystem::path file = dir / "BENCH_unit_write.json";
  ASSERT_TRUE(std::filesystem::exists(file));
  std::ifstream in(file);
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_TRUE(BenchReport::validate(text.str()));

  unsetenv("GEO_BENCH_JSON_DIR");
  std::filesystem::remove_all(dir);
}

TEST(BenchReport, DisabledWriteCountsAsSuccess) {
  setenv("GEO_BENCH_JSON", "0", 1);
  BenchReport report("unit_disabled");
  EXPECT_TRUE(report.write());
  setenv("GEO_BENCH_JSON", "1", 1);
}

}  // namespace
}  // namespace geo::bench
