// End-to-end fault injection through the GeoMachine and the nn SC layers:
// the zero-overhead default, machine/reference equivalence under identical
// fault models, monotonic degradation, and the ECC accuracy ordering the
// fault_sweep bench asserts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "arch/machine.hpp"
#include "fault/fault_model.hpp"
#include "nn/sc_layers.hpp"

namespace geo {
namespace {

using arch::ConvShape;
using arch::GeoMachine;
using arch::HwConfig;
using arch::MachineResult;
using fault::EccMode;
using fault::FaultConfig;
using fault::ScopedFaultInjection;

struct Fixture {
  ConvShape shape;
  std::vector<float> weights, input, ones, zeros;

  explicit Fixture(unsigned seed = 77) {
    shape = ConvShape::conv("t", 4, 6, 5, 3, 1, false);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(shape.weights()));
    for (auto& w : weights) w = wdist(rng);
    input.resize(static_cast<std::size_t>(shape.activations()));
    for (auto& a : input) a = adist(rng);
    ones.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    zeros.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }
};

HwConfig small_hw(nn::AccumMode accum) {
  HwConfig hw = HwConfig::ulp();
  hw.accum = accum;
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;
  return hw;
}

MachineResult run_machine(const Fixture& f, const HwConfig& hw) {
  GeoMachine machine(hw);
  return machine.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9);
}

double total_error(const MachineResult& a, const MachineResult& b) {
  double err = 0.0;
  for (std::size_t i = 0; i < a.counters.size(); ++i)
    err += std::abs(static_cast<double>(a.counters[i]) -
                    static_cast<double>(b.counters[i]));
  return err;
}

TEST(FaultInjection, DisabledModelIsBitIdenticalToDefault) {
  // GEO_FAULTS unset: the default run and an explicitly-disabled scope must
  // produce the same bits and the same cycle ledger (zero-overhead default).
  const Fixture f;
  const HwConfig hw = small_hw(nn::AccumMode::kPbw);
  const MachineResult plain = run_machine(f, hw);
  ScopedFaultInjection off(nullptr);
  const MachineResult scoped = run_machine(f, hw);
  EXPECT_EQ(plain.counters, scoped.counters);
  EXPECT_EQ(plain.activations, scoped.activations);
  EXPECT_EQ(plain.stats.total_cycles, scoped.stats.total_cycles);
}

TEST(FaultInjection, InertConfigMatchesClean) {
  const Fixture f;
  const HwConfig hw = small_hw(nn::AccumMode::kPbw);
  const MachineResult clean = run_machine(f, hw);
  FaultConfig cfg;  // all rates zero
  cfg.rng_seed = 3;
  ScopedFaultInjection inject(cfg);
  const MachineResult under = run_machine(f, hw);
  EXPECT_EQ(clean.counters, under.counters);
}

TEST(FaultInjection, RunsAreDeterministic) {
  const Fixture f;
  const HwConfig hw = small_hw(nn::AccumMode::kPbw);
  FaultConfig cfg;
  cfg.stream_flip_rate = 0.02;
  cfg.sram_error_rate = 1e-3;
  cfg.rng_seed = 17;
  MachineResult r1, r2;
  {
    ScopedFaultInjection inject(cfg);
    r1 = run_machine(f, hw);
  }
  {
    ScopedFaultInjection inject(cfg);
    r2 = run_machine(f, hw);
  }
  EXPECT_EQ(r1.counters, r2.counters);
  EXPECT_EQ(r1.stats.total_cycles, r2.stats.total_cycles);
}

// The machine equivalence contract must survive fault injection: the same
// (domain, site) keying corrupts the reference model's streams exactly the
// way the machine's row/pass mapping corrupts its own.
class FaultEquivalence : public ::testing::TestWithParam<nn::AccumMode> {};

TEST_P(FaultEquivalence, MachineMatchesScConv2dUnderFaults) {
  const Fixture f;
  const HwConfig hw = small_hw(GetParam());
  FaultConfig cfg;
  cfg.stream_flip_rate = 0.01;
  cfg.accum_flip_rate = 0.005;
  cfg.sram_error_rate = 1e-3;
  cfg.seed_upset_rate = 0.05;
  cfg.rng_seed = 23;
  ScopedFaultInjection inject(cfg);

  GeoMachine machine(hw);
  const MachineResult r =
      machine.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9);

  std::mt19937 rng(1);
  nn::ScConv2d ref(f.shape.cin, f.shape.cout, f.shape.kh, 1, f.shape.pad,
                   rng, machine.layer_config(f.shape, 9));
  std::copy(f.weights.begin(), f.weights.end(),
            ref.weight().value.data().begin());
  nn::Tensor x({1, f.shape.cin, f.shape.hin, f.shape.win});
  std::copy(f.input.begin(), f.input.end(), x.data().begin());
  const nn::Tensor y = ref.forward(x, false);

  ASSERT_EQ(r.counters.size(), y.size());
  const double L = hw.stream_len;
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(r.counters[i] / L, y[i], 1e-6) << "output " << i;
}

INSTANTIATE_TEST_SUITE_P(Accum, FaultEquivalence,
                         ::testing::Values(nn::AccumMode::kOr,
                                           nn::AccumMode::kPbw,
                                           nn::AccumMode::kPbhw,
                                           nn::AccumMode::kFxp));

TEST(FaultInjection, StreamDamageGrowsWithRate) {
  const Fixture f;
  const HwConfig hw = small_hw(nn::AccumMode::kPbw);
  const MachineResult clean = run_machine(f, hw);
  double prev = -1.0;
  for (const double rate : {1e-3, 1e-2, 5e-2, 0.2}) {
    FaultConfig cfg;
    cfg.stream_flip_rate = rate;
    cfg.rng_seed = 99;
    ScopedFaultInjection inject(cfg);
    const MachineResult faulty = run_machine(f, hw);
    const double err = total_error(clean, faulty);
    EXPECT_GT(err, prev) << "rate " << rate;
    prev = err;
  }
}

TEST(FaultInjection, SecdedBeatsNoEccAndChargesStalls) {
  const Fixture f;
  const HwConfig hw = small_hw(nn::AccumMode::kPbw);
  const MachineResult clean = run_machine(f, hw);

  double err_none = 0.0, err_secded = 0.0;
  std::int64_t stalls_none = 0, stalls_secded = 0;
  for (const EccMode ecc : {EccMode::kNone, EccMode::kSecded}) {
    FaultConfig cfg;
    cfg.sram_error_rate = 5e-3;
    cfg.ecc = ecc;
    cfg.rng_seed = 99;
    ScopedFaultInjection inject(cfg);
    const MachineResult faulty = run_machine(f, hw);
    EXPECT_GT(inject.model().stats().sram_words_corrupted, 0);
    if (ecc == EccMode::kNone) {
      err_none = total_error(clean, faulty);
      stalls_none = faulty.stats.stall_cycles;
    } else {
      err_secded = total_error(clean, faulty);
      stalls_secded = faulty.stats.stall_cycles;
      // Every corruption is retried through the correction path.
      EXPECT_EQ(inject.model().stats().sram_retry_cycles,
                2 * inject.model().stats().sram_words_corrupted);
    }
  }
  // burst=1 makes almost every event a correctable single-bit error: SECDED
  // must be strictly more accurate than running without ECC.
  EXPECT_GT(err_none, 0.0);
  EXPECT_LT(err_secded, err_none);
  EXPECT_GT(stalls_secded, stalls_none);
}

TEST(FaultInjection, StuckColumnPerturbsCounters) {
  const Fixture f;
  const HwConfig hw = small_hw(nn::AccumMode::kPbw);
  const MachineResult clean = run_machine(f, hw);
  FaultConfig cfg;
  cfg.stuck.column = 0;
  cfg.stuck.value = true;
  ScopedFaultInjection inject(cfg);
  const MachineResult faulty = run_machine(f, hw);
  EXPECT_GT(inject.model().stats().stuck_column_events, 0);
  EXPECT_NE(clean.counters, faulty.counters);
}

TEST(FaultInjection, LedgerStaysReconciledUnderFaults) {
  const Fixture f;
  const HwConfig hw = small_hw(nn::AccumMode::kFxp);
  FaultConfig cfg;
  cfg.stream_flip_rate = 0.05;
  cfg.sram_error_rate = 5e-3;
  cfg.ecc = EccMode::kSecded;
  cfg.rng_seed = 4;
  ScopedFaultInjection inject(cfg);
  const MachineResult r = run_machine(f, hw);
  EXPECT_TRUE(r.stats.ledger_ok);
  EXPECT_EQ(r.stats.total_cycles, r.stats.compute_cycles +
                                      r.stats.stall_cycles +
                                      r.stats.nearmem_cycles);
}

}  // namespace
}  // namespace geo
