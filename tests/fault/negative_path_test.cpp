// Negative-path coverage: malformed programs, shapes, and operand spans must
// come back as structured geo::Status errors (or typed exceptions on the
// legacy APIs) — never crashes, never silently wrong results.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "arch/program_validator.hpp"

namespace geo {
namespace {

using arch::ConvShape;
using arch::GeoMachine;
using arch::HwConfig;
using arch::Opcode;
using arch::Program;

struct Operands {
  ConvShape shape = ConvShape::conv("neg", 4, 6, 5, 3, 1, false);
  std::vector<float> weights, input, ones, zeros;

  Operands() {
    weights.assign(static_cast<std::size_t>(shape.weights()), 0.25f);
    input.assign(static_cast<std::size_t>(shape.activations()), 0.5f);
    ones.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    zeros.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }
};

TEST(NegativePath, ValidOperandsSucceed) {
  const Operands op;
  GeoMachine machine(HwConfig::ulp());
  const auto r = machine.try_run_conv(op.shape, op.weights, op.input, op.ones,
                                      op.zeros, 1);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_FALSE(r->activations.empty());
  EXPECT_TRUE(r->stats.ledger_ok);
}

TEST(NegativePath, DegenerateShapesAreStructuredErrors) {
  const Operands op;
  GeoMachine machine(HwConfig::ulp());
  ConvShape bad = op.shape;

  bad.cin = 0;
  EXPECT_FALSE(machine.validate_conv(bad, op.weights, op.input, op.ones,
                                     op.zeros)
                   .ok());

  bad = op.shape;
  bad.stride = 0;
  EXPECT_FALSE(machine.validate_conv(bad, op.weights, op.input, op.ones,
                                     op.zeros)
                   .ok());

  bad = op.shape;
  bad.pad = -1;
  EXPECT_FALSE(machine.validate_conv(bad, op.weights, op.input, op.ones,
                                     op.zeros)
                   .ok());

  bad = op.shape;
  bad.kh = 99;  // kernel larger than the padded input
  const geo::Status s =
      machine.validate_conv(bad, op.weights, op.input, op.ones, op.zeros);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("GeoMachine"), std::string::npos)
      << s.to_string();
}

TEST(NegativePath, OperandSpanMismatchesAreStructuredErrors) {
  const Operands op;
  GeoMachine machine(HwConfig::ulp());

  std::vector<float> short_weights(op.weights.begin(), op.weights.end() - 1);
  auto r = machine.try_run_conv(op.shape, short_weights, op.input, op.ones,
                                op.zeros, 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  std::vector<float> short_input(op.input.begin(), op.input.end() - 2);
  EXPECT_FALSE(machine
                   .try_run_conv(op.shape, op.weights, short_input, op.ones,
                                 op.zeros, 1)
                   .ok());

  std::vector<float> short_bn(op.ones.begin(), op.ones.end() - 1);
  EXPECT_FALSE(machine
                   .try_run_conv(op.shape, op.weights, op.input, short_bn,
                                 op.zeros, 1)
                   .ok());
  EXPECT_FALSE(machine
                   .try_run_conv(op.shape, op.weights, op.input, op.ones,
                                 short_bn, 1)
                   .ok());
}

TEST(NegativePath, LegacyRunConvThrowsTheStatusMessage) {
  const Operands op;
  GeoMachine machine(HwConfig::ulp());
  std::vector<float> short_weights(op.weights.begin(), op.weights.end() - 1);
  try {
    machine.run_conv(op.shape, short_weights, op.input, op.ones, op.zeros, 1);
    FAIL() << "run_conv accepted a short weight span";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("invalid-argument"),
              std::string::npos)
        << e.what();
  }
}

TEST(NegativePath, MalformedProgramsAreStructuredErrors) {
  Program p;
  p.push(Opcode::kGenExec, 128, 4);  // exec before config, no halt
  const geo::Status s = arch::validate_program(p);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("genexec"), std::string::npos) << s.to_string();
}

TEST(NegativePath, MalformedAssemblyDoesNotCrash) {
  for (const char* line : {"jmp 3", "genexec 70000", "nop 1 2 3 4"}) {
    const auto parsed = arch::Instruction::try_parse(line);
    EXPECT_FALSE(parsed.ok()) << line;
    EXPECT_FALSE(parsed.status().message().empty()) << line;
  }
}

}  // namespace
}  // namespace geo
