// Unit tests for the FaultModel itself: spec parsing, per-site determinism,
// each injection primitive, the ECC policies, and the stats ledger.
#include "fault/fault_model.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <vector>

#include "sc/lfsr.hpp"

namespace geo::fault {
namespace {

using Site = FaultModel::Site;

TEST(FaultConfigParse, RoundTripsFullSpec) {
  const auto parsed = FaultConfig::parse(
      "stream=1e-3,accum=5e-4,seed=0.01,sram=1e-4,burst=2,ecc=secded,"
      "stuck=3:1,rng=42");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const FaultConfig& cfg = *parsed;
  EXPECT_DOUBLE_EQ(cfg.stream_flip_rate, 1e-3);
  EXPECT_DOUBLE_EQ(cfg.accum_flip_rate, 5e-4);
  EXPECT_DOUBLE_EQ(cfg.seed_upset_rate, 0.01);
  EXPECT_DOUBLE_EQ(cfg.sram_error_rate, 1e-4);
  EXPECT_EQ(cfg.sram_burst, 2);
  EXPECT_EQ(cfg.ecc, EccMode::kSecded);
  EXPECT_EQ(cfg.stuck.column, 3);
  EXPECT_TRUE(cfg.stuck.value);
  EXPECT_EQ(cfg.rng_seed, 42u);
  EXPECT_TRUE(cfg.any());

  // to_string() re-parses to the same config.
  const auto again = FaultConfig::parse(cfg.to_string());
  ASSERT_TRUE(again.ok()) << cfg.to_string();
  EXPECT_DOUBLE_EQ(again->stream_flip_rate, cfg.stream_flip_rate);
  EXPECT_EQ(again->ecc, cfg.ecc);
  EXPECT_EQ(again->stuck.column, cfg.stuck.column);
}

TEST(FaultConfigParse, IoKeysRoundTripAndCountTowardAny) {
  const auto parsed = FaultConfig::parse(
      "io_rot=0.5,io_short_read=0.1,io_short_write=0.2,io_err=0.3,rng=9");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_DOUBLE_EQ(parsed->io_rot_rate, 0.5);
  EXPECT_DOUBLE_EQ(parsed->io_short_read_rate, 0.1);
  EXPECT_DOUBLE_EQ(parsed->io_short_write_rate, 0.2);
  EXPECT_DOUBLE_EQ(parsed->io_error_rate, 0.3);
  EXPECT_TRUE(parsed->any()) << "io-only specs must install a model";

  const auto again = FaultConfig::parse(parsed->to_string());
  ASSERT_TRUE(again.ok()) << parsed->to_string();
  EXPECT_DOUBLE_EQ(again->io_rot_rate, 0.5);
  EXPECT_DOUBLE_EQ(again->io_error_rate, 0.3);

  for (const char* spec : {"io_rot=2.0", "io_err=-0.5", "io_short_read=x"})
    EXPECT_FALSE(FaultConfig::parse(spec).ok()) << spec;
}

TEST(FaultModelIo, DefectRotPersistsAndTransientsReRoll) {
  FaultConfig cfg;
  cfg.io_rot_rate = 1.0;
  cfg.rng_seed = 3;
  FaultModel defect(cfg);
  std::vector<unsigned char> a(64, 0xAB), b(64, 0xAB);
  EXPECT_GT(defect.corrupt_block(a.data(), a.size(), 17), 0);
  EXPECT_GT(defect.corrupt_block(b.data(), b.size(), 17), 0);
  EXPECT_EQ(a, b) << "defect-model rot must reproduce per site";
  EXPECT_NE(a, std::vector<unsigned char>(64, 0xAB));

  // io_err is transient by nature: at rate 0.5 the per-access sequence must
  // produce both outcomes for a fixed site.
  FaultConfig ecfg;
  ecfg.io_error_rate = 0.5;
  ecfg.rng_seed = 3;
  FaultModel errs(ecfg);
  bool saw_error = false, saw_ok = false;
  for (int i = 0; i < 64 && !(saw_error && saw_ok); ++i)
    (errs.io_error(17) ? saw_error : saw_ok) = true;
  EXPECT_TRUE(saw_error);
  EXPECT_TRUE(saw_ok);

  const FaultStats stats = defect.stats();
  EXPECT_EQ(stats.io_blocks_rotted, 2);
}

TEST(FaultConfigParse, DefaultsAreInert) {
  const auto parsed = FaultConfig::parse("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->any());
}

TEST(FaultConfigParse, RejectsMalformedSpecs) {
  for (const char* spec :
       {"bogus=1", "stream", "stream=2.0", "stream=-0.1", "stream=abc",
        "burst=0", "burst=99", "ecc=hamming", "stuck=32", "stuck=3:2",
        "rng=notanumber"}) {
    const auto parsed = FaultConfig::parse(spec);
    EXPECT_FALSE(parsed.ok()) << "'" << spec << "' parsed";
  }
}

TEST(FaultConfigParse, FromEnvTracksGeoFaults) {
  setenv("GEO_FAULTS", "stream=0.25,rng=7", 1);
  const auto cfg = FaultConfig::from_env();
  ASSERT_TRUE(cfg.has_value());
  EXPECT_DOUBLE_EQ(cfg->stream_flip_rate, 0.25);

  setenv("GEO_FAULTS", "garbage", 1);
  EXPECT_FALSE(FaultConfig::from_env().has_value());  // warns, never aborts

  unsetenv("GEO_FAULTS");
  EXPECT_FALSE(FaultConfig::from_env().has_value());
}

FaultConfig stream_cfg(double rate, std::uint64_t rng = 11) {
  FaultConfig cfg;
  cfg.stream_flip_rate = rate;
  cfg.rng_seed = rng;
  return cfg;
}

TEST(FaultModelStream, FlipsAreDeterministicPerSite) {
  FaultModel a(stream_cfg(0.05));
  FaultModel b(stream_cfg(0.05));
  std::vector<std::uint64_t> wa(4, 0), wb(4, 0);
  const int na = a.corrupt_stream(wa.data(), 256, Site::kWeightStream, 9);
  const int nb = b.corrupt_stream(wb.data(), 256, Site::kWeightStream, 9);
  EXPECT_EQ(na, nb);
  EXPECT_EQ(wa, wb);
  EXPECT_GT(na, 0);  // 256 bits at 5% — the chance of zero flips is ~2e-6

  // A different site (or domain) gets an independent pattern.
  std::vector<std::uint64_t> wc(4, 0), wd(4, 0);
  b.corrupt_stream(wc.data(), 256, Site::kWeightStream, 10);
  b.corrupt_stream(wd.data(), 256, Site::kActStream, 9);
  EXPECT_NE(wc, wa);
  EXPECT_NE(wd, wa);
}

TEST(FaultModelStream, ZeroRateIsUntouched) {
  FaultModel m(stream_cfg(0.0, 1));
  std::vector<std::uint64_t> w(4, 0xDEADBEEFull);
  EXPECT_EQ(m.corrupt_stream(w.data(), 256, Site::kActStream, 1), 0);
  EXPECT_EQ(w, std::vector<std::uint64_t>(4, 0xDEADBEEFull));
  EXPECT_EQ(m.stats().stream_bits_flipped, 0);
}

TEST(FaultModelStream, RateOneFlipsEveryBit) {
  FaultModel m(stream_cfg(1.0));
  std::vector<std::uint64_t> w(2, 0);
  EXPECT_EQ(m.corrupt_stream(w.data(), 128, Site::kActStream, 0), 128);
  EXPECT_EQ(w, std::vector<std::uint64_t>(2, ~0ull));
}

TEST(FaultModelStream, FlipCountTracksRate) {
  FaultModel m(stream_cfg(0.01));
  std::vector<std::uint64_t> w(16, 0);
  int total = 0;
  for (std::uint64_t site = 0; site < 100; ++site)
    total += m.corrupt_stream(w.data(), 1024, Site::kWeightStream, site);
  // 102400 bits at 1%: expect ~1024 flips; 3x margins are astronomically safe.
  EXPECT_GT(total, 300);
  EXPECT_LT(total, 3000);
  EXPECT_EQ(m.stats().stream_bits_flipped, total);
}

TEST(FaultModelSeed, UpsetsChangeSeedOrPolynomial) {
  FaultConfig cfg;
  cfg.seed_upset_rate = 1.0;
  cfg.rng_seed = 5;
  FaultModel m(cfg);
  sc::SeedSpec spec;
  spec.bits = 8;
  spec.seed = 0x5A;
  spec.taps = sc::Lfsr::default_taps(8);
  int changed = 0;
  for (std::uint64_t site = 0; site < 32; ++site) {
    const sc::SeedSpec out = m.corrupt_seed(spec, site);
    changed += out.seed != spec.seed || out.taps != spec.taps;
  }
  EXPECT_EQ(changed, 32);  // rate 1.0 upsets every SNG
  EXPECT_EQ(m.stats().seed_upsets, 32);

  // Determinism: the same site upsets the same way.
  const sc::SeedSpec o1 = m.corrupt_seed(spec, 3);
  const sc::SeedSpec o2 = m.corrupt_seed(spec, 3);
  EXPECT_EQ(o1.seed, o2.seed);
  EXPECT_EQ(o1.taps, o2.taps);
}

FaultConfig sram_cfg(double rate, EccMode ecc, std::uint64_t rng = 21) {
  FaultConfig cfg;
  cfg.sram_error_rate = rate;
  cfg.ecc = ecc;
  cfg.rng_seed = rng;
  return cfg;
}

TEST(FaultModelSram, NoneDeliversCorruptedWords) {
  FaultModel m(sram_cfg(0.08, EccMode::kNone));
  int changed = 0;
  for (std::uint64_t site = 0; site < 400; ++site)
    changed += m.sram_read(0xA5u, 8, Site::kWeightSram, site) != 0xA5u;
  const FaultStats st = m.stats();
  EXPECT_GT(changed, 0);
  EXPECT_EQ(st.sram_words_corrupted, changed);
  EXPECT_EQ(st.sram_silent_corruptions, changed);
  EXPECT_EQ(st.sram_errors_detected, 0);
  EXPECT_EQ(st.sram_retry_cycles, 0);
}

TEST(FaultModelSram, ParityZeroesOddWeightErrors) {
  FaultModel m(sram_cfg(0.08, EccMode::kParity));
  for (std::uint64_t site = 0; site < 400; ++site) {
    const std::uint32_t out = m.sram_read(0xFFu, 8, Site::kActSram, site);
    // Detected reads are zeroed; undetected ones pass through (possibly
    // corrupted with an even number of flips).
    if (out != 0xFFu && out != 0u) {
      // Even-weight slip-through: the delta must have even popcount.
      EXPECT_EQ(std::popcount(out ^ 0xFFu) % 2, 0);
    }
  }
  const FaultStats st = m.stats();
  EXPECT_GT(st.sram_words_corrupted, 0);
  EXPECT_EQ(st.sram_errors_detected + st.sram_silent_corruptions,
            st.sram_words_corrupted);
  EXPECT_GT(st.sram_errors_detected, 0);  // single-bit events dominate at 8%
}

TEST(FaultModelSram, SecdedCorrectsSinglesAndChargesRetries) {
  FaultModel m(sram_cfg(0.08, EccMode::kSecded));
  for (std::uint64_t site = 0; site < 400; ++site) {
    const std::uint32_t out = m.sram_read(0xC3u, 8, Site::kWeightSram, site);
    // SECDED never delivers a corrupted word: corrected or zeroed.
    EXPECT_TRUE(out == 0xC3u || out == 0u) << site;
  }
  const FaultStats st = m.stats();
  EXPECT_GT(st.sram_errors_corrected, 0);
  EXPECT_EQ(st.sram_errors_corrected + st.sram_errors_detected,
            st.sram_words_corrupted);
  EXPECT_EQ(st.sram_retry_cycles, 2 * st.sram_words_corrupted);
  EXPECT_EQ(st.sram_silent_corruptions, 0);
}

TEST(FaultModelSram, BurstWidensEvents) {
  FaultModel m1(sram_cfg(0.05, EccMode::kNone, 33));
  FaultConfig c2 = sram_cfg(0.05, EccMode::kNone, 33);
  c2.sram_burst = 4;
  FaultModel m4(c2);
  int single_total = 0, burst_total = 0;
  for (std::uint64_t site = 0; site < 500; ++site) {
    single_total += std::popcount(m1.sram_read(0, 16, Site::kActSram, site));
    burst_total += std::popcount(m4.sram_read(0, 16, Site::kActSram, site));
  }
  EXPECT_GT(burst_total, single_total);  // same events, wider damage
}

TEST(FaultModelStuck, ForcesTheConfiguredColumn) {
  FaultConfig cfg;
  cfg.stuck.column = 2;
  cfg.stuck.value = true;
  FaultModel m(cfg);
  EXPECT_TRUE(m.stuck_enabled());
  EXPECT_EQ(m.apply_stuck(0b0000), 0b0100u);
  EXPECT_EQ(m.apply_stuck(0b0100), 0b0100u);  // already set: no event
  EXPECT_EQ(m.stats().stuck_column_events, 1);

  FaultConfig low;
  low.stuck.column = 0;
  low.stuck.value = false;
  FaultModel m0(low);
  EXPECT_EQ(m0.apply_stuck(0b0111), 0b0110u);
}

TEST(FaultModelActive, ScopedInjectionOverridesAndRestores) {
  EXPECT_EQ(active(), nullptr);  // tier-1 runs with GEO_FAULTS unset
  {
    ScopedFaultInjection outer(stream_cfg(0.5));
    EXPECT_EQ(active(), &outer.model());
    {
      ScopedFaultInjection inner(nullptr);
      EXPECT_EQ(active(), nullptr);
    }
    EXPECT_EQ(active(), &outer.model());
  }
  EXPECT_EQ(active(), nullptr);
}

TEST(FaultModelStats, ResetClearsTheLedger) {
  FaultModel m(stream_cfg(1.0));
  std::vector<std::uint64_t> w(1, 0);
  m.corrupt_stream(w.data(), 64, Site::kWeightStream, 0);
  EXPECT_GT(m.stats().stream_bits_flipped, 0);
  m.reset_stats();
  EXPECT_EQ(m.stats().stream_bits_flipped, 0);
}

}  // namespace
}  // namespace geo::fault
