#include "arch/report.hpp"

#include <gtest/gtest.h>

namespace geo::arch {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("|-------|-------|"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.render().find("| x |"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, SiFormatting) {
  EXPECT_EQ(Table::si(14000.0), "14.0k");
  EXPECT_EQ(Table::si(3.2e6), "3.2M");
  EXPECT_EQ(Table::si(1.8e9), "1.8G");
  EXPECT_EQ(Table::si(42.0), "42.0");
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(Table::percent(0.821), "82.1%");
}

TEST(Bar, ScalesToWidth) {
  EXPECT_EQ(bar(1.0, 1.0, 10), "##########");
  EXPECT_EQ(bar(0.5, 1.0, 10), "#####");
  EXPECT_EQ(bar(0.0, 1.0, 10), "");
  EXPECT_EQ(bar(2.0, 1.0, 10), "##########") << "clamped at full width";
  EXPECT_EQ(bar(1.0, 0.0, 10), "") << "degenerate max";
}

}  // namespace
}  // namespace geo::arch
