#include "arch/report.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace geo::arch {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("|-------|-------|"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.render().find("| x |"), std::string::npos);
}

TEST(Table, LongRowsPreservedAndRendered) {
  Table t({"a", "b"});
  t.add_row({"1", "2", "extra"});
  ASSERT_EQ(t.rows()[0].size(), 3u);
  const std::string s = t.render();
  // The ragged cell is rendered; the header gains a blank column.
  EXPECT_NE(s.find("extra"), std::string::npos);
  EXPECT_NE(s.find("| a | b |       |"), std::string::npos);
}

TEST(Table, AccessorsExposeExactCells) {
  Table t({"h1", "h2"});
  t.add_row({"v1", "v2"});
  EXPECT_EQ(t.header(), (std::vector<std::string>{"h1", "h2"}));
  ASSERT_EQ(t.rows().size(), 1u);
  EXPECT_EQ(t.rows()[0], (std::vector<std::string>{"v1", "v2"}));
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, SiFormatting) {
  EXPECT_EQ(Table::si(14000.0), "14.0k");
  EXPECT_EQ(Table::si(3.2e6), "3.2M");
  EXPECT_EQ(Table::si(1.8e9), "1.8G");
  EXPECT_EQ(Table::si(42.0), "42.0");
}

TEST(Table, SiEdgeCases) {
  EXPECT_EQ(Table::si(0.0), "0.0");
  EXPECT_EQ(Table::si(-14000.0), "-14.0k");
  EXPECT_EQ(Table::si(-3.2e6), "-3.2M");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Table::si(inf), "inf");
  EXPECT_EQ(Table::si(-inf), "-inf");
  EXPECT_EQ(Table::si(std::numeric_limits<double>::quiet_NaN()), "nan");
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(Table::percent(0.821), "82.1%");
}

TEST(Table, PercentEdgeCases) {
  EXPECT_EQ(Table::percent(0.0), "0.0%");
  EXPECT_EQ(Table::percent(-0.25), "-25.0%");
  EXPECT_EQ(Table::percent(1.5), "150.0%");
}

TEST(Bar, ScalesToWidth) {
  EXPECT_EQ(bar(1.0, 1.0, 10), "##########");
  EXPECT_EQ(bar(0.5, 1.0, 10), "#####");
  EXPECT_EQ(bar(0.0, 1.0, 10), "");
  EXPECT_EQ(bar(2.0, 1.0, 10), "##########") << "clamped at full width";
  EXPECT_EQ(bar(1.0, 0.0, 10), "") << "degenerate max";
}

TEST(Bar, DegenerateInputs) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(bar(1.0, -2.0, 10), "") << "negative max";
  EXPECT_EQ(bar(-1.0, 1.0, 10), "") << "negative value";
  EXPECT_EQ(bar(1.0, 1.0, 0), "") << "zero width";
  EXPECT_EQ(bar(1.0, 1.0, -3), "") << "negative width";
  EXPECT_EQ(bar(inf, 1.0, 10), "") << "non-finite value";
  EXPECT_EQ(bar(nan, 1.0, 10), "") << "nan value";
  EXPECT_EQ(bar(1.0, inf, 10), "") << "non-finite max";
  EXPECT_EQ(bar(1.0, nan, 10), "") << "nan max";
}

}  // namespace
}  // namespace geo::arch
