#include "arch/compiler.hpp"

#include <gtest/gtest.h>

namespace geo::arch {
namespace {

TEST(ConvShape, Dimensions) {
  const ConvShape s = ConvShape::conv("c", 3, 32, 32, 5, 2, true);
  EXPECT_EQ(s.hout(), 32);
  EXPECT_EQ(s.wout(), 32);
  EXPECT_EQ(s.taps(), 75);
  EXPECT_EQ(s.outputs(), 32 * 32 * 32);
  EXPECT_EQ(s.macs(), s.outputs() * 75);
  EXPECT_EQ(s.weights(), 32 * 75);
}

TEST(ConvShape, FcIsOneByOne) {
  const ConvShape s = ConvShape::fc("fc", 512, 10, true);
  EXPECT_EQ(s.hout(), 1);
  EXPECT_EQ(s.outputs(), 10);
  EXPECT_EQ(s.macs(), 5120);
  EXPECT_TRUE(s.output);
}

TEST(NetworkShape, PaperNetworksWellFormed) {
  for (const NetworkShape& net :
       {NetworkShape::cnn4_cifar(), NetworkShape::lenet5(),
        NetworkShape::vgg16()}) {
    EXPECT_FALSE(net.layers.empty()) << net.name;
    EXPECT_GT(net.total_macs(), 0) << net.name;
    EXPECT_TRUE(net.layers.back().output) << net.name;
  }
  // Network size ordering matches the paper's workloads.
  EXPECT_GT(NetworkShape::vgg16().total_macs(),
            NetworkShape::cnn4_cifar().total_macs());
  EXPECT_GT(NetworkShape::cnn4_cifar().total_macs(),
            NetworkShape::lenet5().total_macs());
}

TEST(Compiler, StreamLengthSelection) {
  const Compiler c(HwConfig::ulp());  // sp=32, s=64, output=128
  EXPECT_EQ(c.stream_len_for(ConvShape::conv("a", 3, 32, 32, 5, 2, true)), 32);
  EXPECT_EQ(c.stream_len_for(ConvShape::conv("b", 3, 32, 32, 5, 2, false)),
            64);
  EXPECT_EQ(c.stream_len_for(ConvShape::fc("fc", 512, 10, true)), 128);
}

TEST(Compiler, KernelSlicingWhenTapsExceedRow) {
  const Compiler c(HwConfig::ulp());  // 400 MACs per row
  const ConvShape big = ConvShape::conv("conv", 32, 16, 16, 5, 2, false);
  ASSERT_GT(big.taps(), 400);
  const LayerPlan plan = c.plan_layer(big, Dataflow::kWeightStationary);
  EXPECT_EQ(plan.kernel_slices, 2);
  EXPECT_GT(plan.nm_psum_ops, 0) << "psums must spill to near-memory";
  // One window per row, but idle rows (64 rows, 16 output channels) pick up
  // further window positions.
  EXPECT_EQ(plan.windows_per_pass, 4);
}

TEST(Compiler, SmallKernelUnrollsWindows) {
  const Compiler c(HwConfig::ulp());
  const ConvShape small = ConvShape::conv("conv", 3, 32, 32, 5, 2, true);
  const LayerPlan plan = c.plan_layer(small, Dataflow::kWeightStationary);
  EXPECT_EQ(plan.kernel_slices, 1);
  EXPECT_GT(plan.windows_per_pass, 1);
  EXPECT_EQ(plan.nm_psum_ops, 0);
}

TEST(Compiler, SplitUnipolarDoublesCycles) {
  const Compiler c(HwConfig::ulp());
  const LayerPlan plan = c.plan_layer(
      ConvShape::conv("conv", 3, 32, 32, 5, 2, false),
      Dataflow::kWeightStationary);
  EXPECT_EQ(plan.stream_cycles, 2 * plan.stream_len);
}

TEST(Compiler, WeightStationaryBeatsOutputStationary) {
  // Sec. III-C: strict output-stationary costs up to ~10x more accesses on
  // the deep (VGG-class) layers; checked on the LP fabric the paper uses
  // for VGG.
  const Compiler c(HwConfig::lp());
  const ConvShape deep = ConvShape::conv("deep", 512, 4, 512, 3, 1, false);
  const auto ws = c.plan_layer(deep, Dataflow::kWeightStationary);
  const auto os = c.plan_layer(deep, Dataflow::kOutputStationary);
  const double ratio = static_cast<double>(os.accesses.total()) /
                       static_cast<double>(ws.accesses.total());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 30.0);
}

TEST(Compiler, WeightStationaryBeatsInputStationaryOnConvs) {
  const Compiler c(HwConfig::ulp());
  double ws_total = 0, is_total = 0;
  for (const auto& layer : NetworkShape::cnn4_cifar().layers) {
    ws_total += static_cast<double>(
        c.plan_layer(layer, Dataflow::kWeightStationary).accesses.total());
    is_total += static_cast<double>(
        c.plan_layer(layer, Dataflow::kInputStationary).accesses.total());
  }
  const double ratio = is_total / ws_total;
  EXPECT_GT(ratio, 1.3) << "paper: WS reduces accesses up to 3.3x vs IS";
  EXPECT_LT(ratio, 8.0);
}

TEST(Compiler, PsumFractionInPaperBand) {
  // Sec. III-C: partial sums are 13-20% of (activation) memory accesses on
  // the deep workloads; we accept a wider band and record the exact value
  // in EXPERIMENTS.md.
  const Compiler c(HwConfig::lp());
  AccessCounts total;
  for (const auto& plan : c.compile(NetworkShape::vgg16()))
    total += plan.accesses;
  const double frac =
      static_cast<double>(total.psum_reads + total.psum_writes) /
      static_cast<double>(total.act_memory_total());
  EXPECT_GT(frac, 0.05);
  EXPECT_LT(frac, 0.45);
}

TEST(Compiler, NaturalDataflowFollowsNearMemory) {
  HwConfig hw = HwConfig::ulp();
  EXPECT_EQ(Compiler(hw).natural_dataflow(), Dataflow::kWeightStationary);
  hw.near_memory = false;
  EXPECT_EQ(Compiler(hw).natural_dataflow(), Dataflow::kOutputStationary);
}

TEST(Compiler, ProgramShape) {
  const Compiler c(HwConfig::ulp());
  const LayerPlan plan = c.plan_layer(
      ConvShape::conv("conv", 32, 16, 16, 5, 2, true),
      Dataflow::kWeightStationary);
  const auto& prog = plan.program;
  ASSERT_GE(prog.size(), 6u);
  EXPECT_EQ(prog[0].op, Opcode::kConfig);
  EXPECT_EQ(prog[0].arg0, plan.stream_len);
  bool has_gen = false, has_pool = false, has_nmacc = false;
  for (const auto& inst : prog.instructions()) {
    has_gen |= inst.op == Opcode::kGenExec;
    has_pool |= inst.op == Opcode::kPool;
    has_nmacc |= inst.op == Opcode::kNearMemAcc;
  }
  EXPECT_TRUE(has_gen);
  EXPECT_TRUE(has_pool);
  EXPECT_TRUE(has_nmacc);
  EXPECT_EQ(prog.instructions().back().op, Opcode::kHalt);
}

TEST(Compiler, PoolingHalvesWritebacks) {
  const Compiler c(HwConfig::ulp());
  ConvShape shape = ConvShape::conv("conv", 3, 32, 32, 5, 2, false);
  const auto no_pool = c.plan_layer(shape, Dataflow::kWeightStationary);
  shape.pool = true;
  const auto pooled = c.plan_layer(shape, Dataflow::kWeightStationary);
  EXPECT_EQ(pooled.accesses.act_writes * 4, no_pool.accesses.act_writes);
}

TEST(Compiler, ExternalMemoryTraffic) {
  const Compiler lp(HwConfig::lp());
  const Compiler ulp(HwConfig::ulp());
  const ConvShape shape = ConvShape::conv("conv", 64, 16, 128, 3, 1, false);
  EXPECT_GT(lp.plan_layer(shape, Dataflow::kWeightStationary)
                .accesses.ext_bytes,
            0);
  EXPECT_EQ(ulp.plan_layer(shape, Dataflow::kWeightStationary)
                .accesses.ext_bytes,
            0);
}

TEST(Compiler, CompileCoversAllLayers) {
  const Compiler c(HwConfig::ulp());
  const NetworkShape net = NetworkShape::cnn4_cifar();
  EXPECT_EQ(c.compile(net).size(), net.layers.size());
}

}  // namespace
}  // namespace geo::arch
