#include "arch/machine.hpp"

#include <gtest/gtest.h>

#include <random>

#include "nn/sc_layers.hpp"
#include "telemetry/telemetry.hpp"

namespace geo::arch {
namespace {

// Builds matching operands for the machine and the nn reference layer.
struct Fixture {
  ConvShape shape;
  std::vector<float> weights;
  std::vector<float> input;
  std::vector<float> ones, zeros;

  Fixture(int cin, int hw_dim, int cout, int kernel, unsigned seed) {
    shape = ConvShape::conv("t", cin, hw_dim, cout, kernel,
                            /*pad=*/kernel / 2, /*pool=*/false);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(shape.weights()));
    for (auto& w : weights) w = wdist(rng);
    input.resize(static_cast<std::size_t>(shape.activations()));
    for (auto& a : input) a = adist(rng);
    ones.assign(static_cast<std::size_t>(cout), 1.0f);
    zeros.assign(static_cast<std::size_t>(cout), 0.0f);
  }
};

HwConfig small_hw(nn::AccumMode accum, int stream) {
  HwConfig hw = HwConfig::ulp();
  hw.accum = accum;
  hw.stream_len = stream;
  hw.stream_len_pool = stream;
  hw.stream_len_output = stream;
  return hw;
}

// The core contract: mapping a layer onto rows/windows/passes must not
// change the arithmetic — machine counters equal the bit-level nn layer.
class MachineEquivalence : public ::testing::TestWithParam<nn::AccumMode> {};

TEST_P(MachineEquivalence, MatchesScConv2dBitExactly) {
  const nn::AccumMode accum = GetParam();
  const Fixture f(4, 6, 5, 3, 77);
  const HwConfig hw = small_hw(accum, 64);
  GeoMachine machine(hw);
  const std::uint64_t salt = 9;
  const MachineResult r = machine.run_conv(f.shape, f.weights, f.input,
                                           f.ones, f.zeros, salt);

  // Reference: nn::ScConv2d with the identical configuration.
  std::mt19937 rng(1);
  nn::ScConv2d ref(f.shape.cin, f.shape.cout, f.shape.kh, 1, f.shape.pad,
                   rng, machine.layer_config(f.shape, salt));
  std::copy(f.weights.begin(), f.weights.end(),
            ref.weight().value.data().begin());
  nn::Tensor x({1, f.shape.cin, f.shape.hin, f.shape.win});
  std::copy(f.input.begin(), f.input.end(), x.data().begin());
  const nn::Tensor y = ref.forward(x, false);

  ASSERT_EQ(r.counters.size(), y.size());
  const double L = hw.stream_len;
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(r.counters[i] / L, y[i], 1e-6) << "output " << i;
}

INSTANTIATE_TEST_SUITE_P(Accum, MachineEquivalence,
                         ::testing::Values(nn::AccumMode::kOr,
                                           nn::AccumMode::kPbw,
                                           nn::AccumMode::kPbhw,
                                           nn::AccumMode::kFxp));

TEST(Machine, PassCountMatchesCompilerPlan) {
  const Fixture f(8, 8, 12, 3, 3);
  const HwConfig hw = small_hw(nn::AccumMode::kPbw, 32);
  GeoMachine machine(hw);
  const MachineResult r = machine.run_conv(f.shape, f.weights, f.input,
                                           f.ones, f.zeros, 1);
  const Compiler c(hw);
  const LayerPlan plan = c.plan_layer(f.shape, c.natural_dataflow());
  EXPECT_EQ(r.stats.passes, plan.passes);
  EXPECT_EQ(r.stats.total_cycles, r.stats.compute_cycles +
                                      r.stats.stall_cycles +
                                      r.stats.nearmem_cycles);
}

TEST(Machine, KernelSlicingSpillsPsums) {
  // taps = 32*5*5 = 800 > 400 MACs/row: two slices, psum traffic.
  const Fixture f(32, 6, 4, 5, 5);
  const HwConfig hw = small_hw(nn::AccumMode::kPbw, 32);
  GeoMachine machine(hw);
  const MachineResult r = machine.run_conv(f.shape, f.weights, f.input,
                                           f.ones, f.zeros, 2);
  EXPECT_GT(r.stats.psum_ops, 0);
}

TEST(Machine, SlicedOrAccumulationRecoversUnionLoss) {
  // Splitting a kernel across passes converts the OR union into two unions
  // added in fixed point — never less than the single big union.
  Fixture f(32, 6, 2, 5, 11);
  for (auto& w : f.weights) w = std::abs(w);  // all-positive: counts ordered
  const HwConfig hw = small_hw(nn::AccumMode::kOr, 64);
  GeoMachine machine(hw);
  const MachineResult sliced = machine.run_conv(f.shape, f.weights, f.input,
                                                f.ones, f.zeros, 3);

  std::mt19937 rng(1);
  nn::ScConv2d whole(f.shape.cin, f.shape.cout, f.shape.kh, 1, f.shape.pad,
                     rng, machine.layer_config(f.shape, 3));
  std::copy(f.weights.begin(), f.weights.end(),
            whole.weight().value.data().begin());
  nn::Tensor x({1, f.shape.cin, f.shape.hin, f.shape.win});
  std::copy(f.input.begin(), f.input.end(), x.data().begin());
  const nn::Tensor y = whole.forward(x, false);

  const double L = hw.stream_len;
  double sliced_sum = 0, whole_sum = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    sliced_sum += sliced.counters[i] / L;
    whole_sum += y[i];
  }
  EXPECT_GE(sliced_sum, whole_sum - 1e-6);
}

TEST(Machine, BnAndReluProduceUnipolarBytes) {
  const Fixture f(4, 6, 3, 3, 13);
  std::vector<float> scale(3, 2.0f), shift(3, -0.2f);
  GeoMachine machine(small_hw(nn::AccumMode::kPbw, 64));
  const MachineResult r =
      machine.run_conv(f.shape, f.weights, f.input, scale, shift, 4);
  bool any_nonzero = false;
  for (std::uint8_t a : r.activations) any_nonzero |= a != 0;
  EXPECT_TRUE(any_nonzero);
  EXPECT_GT(r.stats.bn_ops, 0);
}

TEST(Machine, ShadowBufferingReducesStalls) {
  const Fixture f(8, 10, 8, 3, 17);
  // Same generation scheme (so the arithmetic is identical), shadow
  // buffering toggled.
  HwConfig with = small_hw(nn::AccumMode::kPbw, 128);
  with.progressive = false;
  HwConfig without = with;
  without.shadow_buffers = false;
  const MachineResult a =
      GeoMachine(with).run_conv(f.shape, f.weights, f.input, f.ones,
                                f.zeros, 5);
  const MachineResult b =
      GeoMachine(without).run_conv(f.shape, f.weights, f.input, f.ones,
                                   f.zeros, 5);
  EXPECT_LT(a.stats.stall_cycles, b.stats.stall_cycles);
  // Identical arithmetic regardless of buffering policy.
  EXPECT_EQ(a.counters, b.counters);
}

TEST(Machine, RejectsBadOperands) {
  const Fixture f(2, 4, 2, 3, 19);
  GeoMachine machine(small_hw(nn::AccumMode::kPbw, 32));
  std::vector<float> short_weights(3, 0.0f);
  EXPECT_THROW(machine.run_conv(f.shape, short_weights, f.input, f.ones,
                                f.zeros, 1),
               std::invalid_argument);
  std::vector<float> short_bn(1, 1.0f);
  EXPECT_THROW(machine.run_conv(f.shape, f.weights, f.input, short_bn,
                                short_bn, 1),
               std::invalid_argument);
}

TEST(Machine, TelemetryCountersReconcileWithStats) {
  auto& metrics = telemetry::MetricsRegistry::instance();
  const std::int64_t passes0 = metrics.counter("machine.passes").value();
  const std::int64_t compute0 =
      metrics.counter("machine.compute_cycles").value();
  const std::int64_t stall0 = metrics.counter("machine.stall_cycles").value();
  const std::int64_t nearmem0 =
      metrics.counter("machine.nearmem_cycles").value();
  const std::int64_t total0 = metrics.counter("machine.total_cycles").value();
  const std::int64_t psum0 = metrics.counter("machine.psum_ops").value();
  const std::int64_t layers0 =
      metrics.counter("machine.layers_executed").value();

  const Fixture f(4, 6, 5, 3, 31);
  GeoMachine machine(small_hw(nn::AccumMode::kPbw, 32));
  const MachineResult r = machine.run_conv(f.shape, f.weights, f.input,
                                           f.ones, f.zeros, 6);

  // The telemetry mirror advances by exactly what MachineStats reports.
  EXPECT_EQ(metrics.counter("machine.passes").value() - passes0,
            r.stats.passes);
  EXPECT_EQ(metrics.counter("machine.compute_cycles").value() - compute0,
            r.stats.compute_cycles);
  EXPECT_EQ(metrics.counter("machine.stall_cycles").value() - stall0,
            r.stats.stall_cycles);
  EXPECT_EQ(metrics.counter("machine.nearmem_cycles").value() - nearmem0,
            r.stats.nearmem_cycles);
  EXPECT_EQ(metrics.counter("machine.total_cycles").value() - total0,
            r.stats.total_cycles);
  EXPECT_EQ(metrics.counter("machine.psum_ops").value() - psum0,
            r.stats.psum_ops);
  EXPECT_EQ(metrics.counter("machine.layers_executed").value() - layers0, 1);
  // The cycle identity the debug assertion in run_conv enforces.
  EXPECT_EQ(r.stats.total_cycles, r.stats.compute_cycles +
                                      r.stats.stall_cycles +
                                      r.stats.nearmem_cycles);
}

TEST(Machine, StatsScaleWithWork) {
  const Fixture small(2, 4, 2, 3, 21);
  const Fixture big(8, 8, 8, 3, 23);
  GeoMachine machine(small_hw(nn::AccumMode::kPbw, 32));
  const auto rs = machine.run_conv(small.shape, small.weights, small.input,
                                   small.ones, small.zeros, 1);
  const auto rb = machine.run_conv(big.shape, big.weights, big.input,
                                   big.ones, big.zeros, 1);
  EXPECT_GT(rb.stats.total_cycles, rs.stats.total_cycles);
  EXPECT_GT(rb.stats.act_buffer_fills, rs.stats.act_buffer_fills);
}

}  // namespace
}  // namespace geo::arch
