#include "arch/energy_model.hpp"

#include <gtest/gtest.h>

namespace geo::arch {
namespace {

const TechParams kTech = TechParams::hvt28();

TEST(EnergyModel, ComputeCycleEnergySumsModules) {
  const EnergyModel m(HwConfig::ulp(), kTech);
  const double parts = m.mac_cycle_energy() + m.act_sng_cycle_energy() +
                       m.wgt_sng_cycle_energy() + m.buffer_cycle_energy() +
                       m.output_conv_cycle_energy();
  EXPECT_GT(m.compute_cycle_energy(), parts * 0.999)
      << "total includes control on top of the listed modules";
  EXPECT_LT(m.compute_cycle_energy(), parts * 1.25);
}

TEST(EnergyModel, DvfsScalesDynamicEnergyQuadratically) {
  HwConfig nominal = HwConfig::ulp();
  nominal.vdd = 0.9;
  HwConfig low = nominal;
  low.vdd = 0.81;
  const EnergyModel a(nominal, kTech), b(low, kTech);
  EXPECT_NEAR(b.compute_cycle_energy() / a.compute_cycle_energy(), 0.81,
              1e-6);
}

TEST(EnergyModel, LeakageScalesSuperlinearlyWithVoltage) {
  HwConfig nominal = HwConfig::ulp();
  nominal.vdd = 0.9;
  HwConfig low = nominal;
  low.vdd = 0.81;
  const EnergyModel a(nominal, kTech), b(low, kTech);
  const double ratio = b.leakage_power() / a.leakage_power();
  EXPECT_LT(ratio, 0.81);
  EXPECT_GT(ratio, 0.6);
}

TEST(EnergyModel, BiggerFabricBurnsMore) {
  const EnergyModel ulp(HwConfig::ulp(), kTech);
  const EnergyModel lp(HwConfig::lp(), kTech);
  EXPECT_GT(lp.compute_cycle_energy(), 5.0 * ulp.compute_cycle_energy());
  EXPECT_GT(lp.leakage_power(), ulp.leakage_power());
}

TEST(EnergyModel, MemoryAccessEnergiesOrdered) {
  const EnergyModel m(HwConfig::ulp(), kTech);
  EXPECT_GT(m.act_write_energy(), m.act_read_energy() * 0.999);
  // The larger activation memory costs at least as much per access.
  EXPECT_GE(m.act_read_energy(), m.wgt_read_energy());
  // External DRAM dwarfs on-chip SRAM per bit.
  const double sram_per_bit = m.act_read_energy() / 64.0;
  EXPECT_GT(m.ext_energy_per_bit(), 5.0 * sram_per_bit);
}

TEST(EnergyModel, BufferLoadScalesWithBits) {
  const EnergyModel m(HwConfig::ulp(), kTech);
  EXPECT_NEAR(m.buffer_load_energy(8) / m.buffer_load_energy(2), 4.0, 1e-9);
}

TEST(EnergyModel, ActivityFactorsMatter) {
  ActivityFactors busy;
  busy.mac_array = 0.5;
  const EnergyModel quiet(HwConfig::ulp(), kTech);
  const EnergyModel loud(HwConfig::ulp(), kTech, busy);
  EXPECT_GT(loud.mac_cycle_energy(), quiet.mac_cycle_energy() * 2.0);
}

TEST(EnergyBreakdown, ItemsMatchTotal) {
  EnergyBreakdown e;
  e.mac_array = 1;
  e.act_memory = 2;
  e.leakage = 3;
  e.external_memory = 4;
  double sum = 0;
  for (const auto& [name, j] : e.items()) sum += j;
  EXPECT_DOUBLE_EQ(sum, e.total());
  EXPECT_DOUBLE_EQ(e.total(), 10.0);
}

}  // namespace
}  // namespace geo::arch
