#include "arch/timing_model.hpp"

#include <gtest/gtest.h>

namespace geo::arch {
namespace {

TEST(Timing, PipelineCutsCriticalPathOver30Percent) {
  const TimingReport r = analyze_timing(HwConfig::ulp(), TechParams::hvt28());
  EXPECT_GT(r.critical_path_cut, 0.30) << "paper: >30% cut (Sec. III-D)";
  EXPECT_LT(r.critical_path_cut, 0.60);
  EXPECT_DOUBLE_EQ(r.pipelined_ns, std::max(r.stage1_ns, r.stage2_ns));
  EXPECT_LT(r.pipelined_ns, r.unpipelined_ns);
}

TEST(Timing, DvfsLandsNearPaperVoltage) {
  const TimingReport r = analyze_timing(HwConfig::ulp(), TechParams::hvt28());
  EXPECT_NEAR(r.achievable_vdd, 0.81, 0.05) << "paper runs GEO at 0.81V";
}

TEST(Timing, NoPipelineNoVoltageDrop) {
  HwConfig hw = HwConfig::ulp();
  hw.pipeline_stage = false;
  EXPECT_DOUBLE_EQ(operating_vdd(hw, TechParams::hvt28()),
                   TechParams::hvt28().vdd_nominal);
}

TEST(Timing, PipelineEnablesVoltageDrop) {
  const double v = operating_vdd(HwConfig::ulp(), TechParams::hvt28());
  EXPECT_LT(v, 0.9);
  EXPECT_GT(v, 0.6);
}

TEST(Timing, WiderLfsrLengthensPath) {
  HwConfig narrow = HwConfig::ulp();
  HwConfig wide = HwConfig::ulp();
  wide.lfsr_bits = 16;
  const TechParams t = TechParams::hvt28();
  EXPECT_GT(analyze_timing(wide, t).unpipelined_ns,
            analyze_timing(narrow, t).unpipelined_ns);
}

TEST(Timing, ClockPeriodMatchesFrequency) {
  const TimingReport r = analyze_timing(HwConfig::ulp(), TechParams::hvt28());
  EXPECT_DOUBLE_EQ(r.clock_period_ns, 2.5);  // 400 MHz
}

}  // namespace
}  // namespace geo::arch
