#include "arch/memory_model.hpp"

#include <gtest/gtest.h>

namespace geo::arch {
namespace {

TEST(Sram, AreaScalesLinearly) {
  const SramModel small{64, 64, 2};
  const SramModel big{256, 64, 2};
  EXPECT_NEAR(big.area_mm2() / small.area_mm2(), 4.0, 0.1);
}

TEST(Sram, AccessEnergyGrowsSubLinearly) {
  const SramModel small{16, 64, 2};
  const SramModel big{256, 64, 2};
  const double ratio = big.read_energy_pj() / small.read_energy_pj();
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 16.0) << "CACTI shape: sqrt-ish growth per access";
}

TEST(Sram, BankingReducesAccessEnergy) {
  const SramModel mono{256, 64, 1};
  const SramModel banked{256, 64, 4};
  EXPECT_LT(banked.read_energy_pj(), mono.read_energy_pj());
  EXPECT_GT(banked.area_mm2(), mono.area_mm2());
}

TEST(Sram, WideWordCostsMore) {
  const SramModel narrow{128, 32, 2};
  const SramModel wide{128, 128, 2};
  EXPECT_GT(wide.read_energy_pj(), narrow.read_energy_pj());
}

TEST(Sram, WritesSlightlyAboveReads) {
  const SramModel m{128, 64, 2};
  EXPECT_GT(m.write_energy_pj(), m.read_energy_pj());
  EXPECT_LT(m.write_energy_pj(), 1.5 * m.read_energy_pj());
}

TEST(Sram, LeakageProportionalToCapacity) {
  const SramModel a{100, 64, 2}, b{200, 64, 2};
  EXPECT_NEAR(b.leakage_mw() / a.leakage_mw(), 2.0, 1e-9);
}

TEST(Sram, PlausibleAbsoluteNumbers) {
  // 150 KB at 28nm: a fraction of a mm2; reads a few pJ per 64-bit word.
  const SramModel geo_ulp{150, 64, 2};
  EXPECT_GT(geo_ulp.area_mm2(), 0.1);
  EXPECT_LT(geo_ulp.area_mm2(), 0.6);
  EXPECT_GT(geo_ulp.read_energy_pj(), 1.0);
  EXPECT_LT(geo_ulp.read_energy_pj(), 20.0);
}

TEST(ExternalMemory, Hbm2ClassNumbers) {
  const ExternalMemoryModel m;
  EXPECT_NEAR(m.energy_pj_per_bit, 3.9, 1.0);  // O'Connor et al. ballpark
  EXPECT_DOUBLE_EQ(m.access_energy_pj(1000), m.energy_pj_per_bit * 1000);
}

TEST(ExternalMemory, TransferTime) {
  ExternalMemoryModel m;
  m.bandwidth_gbytes = 32.0;
  EXPECT_NEAR(m.transfer_seconds(32e9), 1.0, 1e-9);
  EXPECT_NEAR(m.transfer_seconds(16e6), 0.5e-3, 1e-6);
}

}  // namespace
}  // namespace geo::arch
