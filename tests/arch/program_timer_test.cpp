#include "arch/program_timer.hpp"

#include <gtest/gtest.h>

#include "arch/compiler.hpp"
#include "arch/perf_sim.hpp"

namespace geo::arch {
namespace {

Program simple_pass(int loads, int gen_cycles) {
  Program p;
  p.push(Opcode::kConfig, 64, 6, 1);
  p.push(Opcode::kLoadAct, loads);
  p.push(Opcode::kBarrier);
  p.push(Opcode::kGenExec, gen_cycles, 64);
  p.push(Opcode::kHalt);
  return p;
}

TEST(ProgramTimer, SerialLoadFullyExposed) {
  HwConfig hw = HwConfig::base_ulp();  // no shadow, no progressive
  const ProgramTimer timer(hw);
  const ProgramTiming t = timer.time(simple_pass(400, 256));
  // 400 values * 8 bits / 32 bits-per-cycle = 100 load cycles, all stalled.
  EXPECT_EQ(t.load_cycles, 100);
  EXPECT_GE(t.stall_cycles, 99);
  EXPECT_EQ(t.compute_cycles, 256);  // no pipeline stage in the baseline
}

TEST(ProgramTimer, ShadowHidesLoadsAcrossIterations) {
  HwConfig hw = HwConfig::ulp();
  const ProgramTimer timer(hw);
  const ProgramTiming once = timer.time(simple_pass(400, 256), 1);
  const ProgramTiming many = timer.time(simple_pass(400, 256), 8);
  // After the first pass the loads ride under compute: the marginal cost of
  // a pass is just its compute time (+ small fixed overhead).
  const std::int64_t marginal = (many.cycles - once.cycles) / 7;
  EXPECT_LT(marginal, 275);
  EXPECT_GE(marginal, 257);
}

TEST(ProgramTimer, ProgressiveCutsFirstStall) {
  HwConfig prog = HwConfig::ulp();  // progressive + shadow
  HwConfig full = prog;
  full.progressive = false;  // shadow only: first pass waits the full load
  const ProgramTiming a = ProgramTimer(prog).time(simple_pass(800, 256));
  const ProgramTiming b = ProgramTimer(full).time(simple_pass(800, 256));
  EXPECT_LT(a.stall_cycles, b.stall_cycles);
  // Roughly the 4x start-latency factor (2 of 8 bits, minus truncation).
  EXPECT_NEAR(static_cast<double>(b.stall_cycles) /
                  std::max<std::int64_t>(a.stall_cycles, 1),
              4.0, 1.8);
}

TEST(ProgramTimer, NearMemCostScalesWithLanes) {
  HwConfig hw = HwConfig::ulp();
  Program p;
  p.push(Opcode::kNearMemAcc, 512);
  p.push(Opcode::kHalt);
  const ProgramTiming t = ProgramTimer(hw).time(p);
  // 512 psums * 2 cycles / (64/16 = 4 lanes) = 256 cycles.
  EXPECT_EQ(t.nearmem_cycles, 256);
}

TEST(ProgramTimer, ExternalStreamingOverlapsCompute) {
  HwConfig hw = HwConfig::lp();
  Program p;
  p.push(Opcode::kLoadExt, 32000);
  p.push(Opcode::kGenExec, 256, 64);
  p.push(Opcode::kHalt);
  const ProgramTiming t = ProgramTimer(hw).time(p);
  EXPECT_GT(t.ext_cycles, 0);
  // The iteration ends no earlier than the external transfer.
  EXPECT_GE(t.cycles, t.ext_cycles);
}

TEST(ProgramTimer, AgreesWithAnalyticalPerfSimOnCompiledLayer) {
  // The instruction-level timing of `passes` iterations of the compiled
  // per-pass program must land near the analytical per-layer model.
  const HwConfig hw = HwConfig::ulp();
  const Compiler compiler(hw);
  const ConvShape layer = ConvShape::conv("conv2", 32, 16, 16, 5, 2, true);
  const LayerPlan plan = compiler.plan_layer(layer,
                                             Dataflow::kWeightStationary);

  const ProgramTiming t = ProgramTimer(hw).time(plan.program, plan.passes);

  // Analytical: passes * (stream cycles + pipeline) + stalls + near-mem.
  const PerfSim sim(hw);
  const double analytic =
      plan.passes * (plan.stream_cycles + 1 + sim.pass_stall_cycles(plan));
  EXPECT_NEAR(static_cast<double>(t.compute_cycles + t.stall_cycles),
              analytic, analytic * 0.35)
      << "instruction-level and analytical timing must agree";
}

}  // namespace
}  // namespace geo::arch
