#include "arch/area_model.hpp"

#include <gtest/gtest.h>

namespace geo::arch {
namespace {

using nn::AccumMode;

TEST(AreaPrimitives, OrTree) {
  EXPECT_DOUBLE_EQ(or_tree_ge(1), 0.0);
  EXPECT_DOUBLE_EQ(or_tree_ge(2), ge_or2());
  EXPECT_DOUBLE_EQ(or_tree_ge(9), 8 * ge_or2());
}

TEST(AreaPrimitives, ParallelCounterGrowsLinearly) {
  const double pc8 = parallel_counter_ge(8, 12);
  const double pc64 = parallel_counter_ge(64, 12);
  EXPECT_GT(pc64, pc8);
  EXPECT_LT(pc64, 12.0 * pc8) << "compressor tree is ~linear in inputs";
}

TEST(AreaPrimitives, ApcSmallerThanExactCounter) {
  for (int n : {8, 32, 128}) {
    EXPECT_LT(apc_ge(n, 12), parallel_counter_ge(n, 12)) << "n=" << n;
  }
}

// Fig. 5 structure: SC < PBW < PBHW < APC < FXP for large kernels, with the
// partial-binary overhead shrinking as kernels grow.
TEST(MacUnitArea, Fig5Ordering) {
  const int cin = 256, kh = 5, kw = 5;
  const double sc = sc_mac_unit_ge(cin, kh, kw, AccumMode::kOr);
  const double pbw = sc_mac_unit_ge(cin, kh, kw, AccumMode::kPbw);
  const double pbhw = sc_mac_unit_ge(cin, kh, kw, AccumMode::kPbhw);
  const double apc = sc_mac_unit_ge(cin, kh, kw, AccumMode::kApc);
  const double fxp = sc_mac_unit_ge(cin, kh, kw, AccumMode::kFxp);
  EXPECT_LT(sc, pbw);
  EXPECT_LT(pbw, pbhw);
  EXPECT_LT(pbhw, apc);
  EXPECT_LT(apc, fxp);
}

TEST(MacUnitArea, PbwOverheadShrinksWithKernelSize) {
  auto overhead = [](int cin) {
    const double sc = sc_mac_unit_ge(cin, 5, 5, AccumMode::kOr);
    return sc_mac_unit_ge(cin, 5, 5, AccumMode::kPbw) / sc;
  };
  EXPECT_GT(overhead(1), overhead(64));
  EXPECT_LT(overhead(256), 1.15) << "paper: ~4% PBW overhead for large kernels";
}

TEST(MacUnitArea, FxpMuchLargerForMostKernels) {
  const double sc = sc_mac_unit_ge(64, 3, 3, AccumMode::kOr);
  const double fxp = sc_mac_unit_ge(64, 3, 3, AccumMode::kFxp);
  EXPECT_GT(fxp / sc, 3.0) << "paper: full binary accumulation >5x for most";
}

TEST(MacUnitArea, ApcLargerThanPartialBinaryForLargeKernels) {
  const double pbw = sc_mac_unit_ge(512, 5, 5, AccumMode::kPbw);
  const double apc = sc_mac_unit_ge(512, 5, 5, AccumMode::kApc);
  EXPECT_GT(apc / pbw, 2.0) << "paper: APC still >3x PBW for large kernels";
}

TEST(AcceleratorArea, UlpMatchesPublishedDesignPoint) {
  const AreaBreakdown a = accelerator_area(HwConfig::ulp(), TechParams::hvt28());
  EXPECT_NEAR(a.total(), 0.58, 0.58 * 0.25) << "calibrated to paper's 0.58mm2";
  EXPECT_GT(a.act_memory + a.wgt_memory, 0.1);
  EXPECT_GT(a.mac_array, 0.02);
}

TEST(AcceleratorArea, LpMatchesPublishedDesignPoint) {
  const AreaBreakdown a = accelerator_area(HwConfig::lp(), TechParams::hvt28());
  EXPECT_NEAR(a.total(), 9.2, 9.2 * 0.30) << "calibrated to paper's 9.2mm2";
  EXPECT_GT(a.ext_mem_phy, 0.0) << "LP pays for the DRAM PHY";
}

TEST(AcceleratorArea, GenOptimizationsRoughlyAreaNeutral) {
  // Fig. 6: shared 8-bit LFSRs + shadow buffers vs unshared 16-bit LFSRs —
  // about a wash (paper: -1%).
  const double base =
      accelerator_area(HwConfig::base_ulp(), TechParams::hvt28()).total();
  const double gen =
      accelerator_area(HwConfig::geo_gen_ulp(), TechParams::hvt28()).total();
  EXPECT_NEAR(gen / base, 1.0, 0.08);
}

TEST(AcceleratorArea, ShadowBuffersCostFewPercent) {
  HwConfig with = HwConfig::ulp();
  HwConfig without = with;
  without.shadow_buffers = false;
  const double a_with =
      accelerator_area(with, TechParams::hvt28()).total();
  const double a_without =
      accelerator_area(without, TechParams::hvt28()).total();
  EXPECT_GT(a_with, a_without);
  EXPECT_LT((a_with - a_without) / a_without, 0.08)
      << "paper: progressive shadow buffers ~4% of accelerator area";
}

TEST(AcceleratorArea, PipelineRegistersUnderOnePercent) {
  HwConfig with = HwConfig::ulp();
  HwConfig without = with;
  without.pipeline_stage = false;
  const double a_with = accelerator_area(with, TechParams::hvt28()).total();
  const double a_without =
      accelerator_area(without, TechParams::hvt28()).total();
  EXPECT_LT((a_with - a_without) / a_without, 0.01);
}

TEST(AcceleratorArea, ItemsSumToTotal) {
  const AreaBreakdown a = accelerator_area(HwConfig::ulp(), TechParams::hvt28());
  double sum = 0;
  for (const auto& [name, mm2] : a.items()) sum += mm2;
  EXPECT_NEAR(sum, a.total(), 1e-9);
}

}  // namespace
}  // namespace geo::arch
