#include "arch/perf_sim.hpp"

#include <gtest/gtest.h>

namespace geo::arch {
namespace {

const NetworkShape kCnn = NetworkShape::cnn4_cifar();

TEST(PerfSim, ProducesConsistentResult) {
  const PerfSim sim(HwConfig::ulp());
  const PerfResult r = sim.simulate(kCnn);
  EXPECT_GT(r.cycles, 0);
  EXPECT_GT(r.frames_per_second, 0);
  EXPECT_GT(r.energy_per_frame_j, 0);
  EXPECT_NEAR(r.frames_per_second * r.seconds, 1.0, 1e-9);
  EXPECT_NEAR(r.average_power_w, r.energy_per_frame_j / r.seconds, 1e-12);
  EXPECT_EQ(r.layers.size(), kCnn.layers.size());
}

TEST(PerfSim, DvfsVoltageApplied) {
  const PerfSim sim(HwConfig::ulp());
  EXPECT_LT(sim.simulate(kCnn).vdd, 0.9);
  HwConfig no_pipe = HwConfig::ulp();
  no_pipe.pipeline_stage = false;
  EXPECT_DOUBLE_EQ(PerfSim(no_pipe).simulate(kCnn).vdd, 0.9);
}

// Monotonicity: disabling any single optimization must not help.
class OptimizationMonotone : public ::testing::TestWithParam<int> {};

TEST_P(OptimizationMonotone, DisablingNeverImproves) {
  HwConfig off = HwConfig::ulp();
  bool latency_neutral = false;
  switch (GetParam()) {
    case 0: off.progressive = false; break;
    case 1: off.shadow_buffers = false; break;
    case 2: off.near_memory = false; break;
    case 3:
      // The pipeline stage trades one fill cycle per pass for DVFS energy;
      // its win is energy, not latency.
      off.pipeline_stage = false;
      latency_neutral = true;
      break;
  }
  const PerfResult base = PerfSim(HwConfig::ulp()).simulate(kCnn);
  const PerfResult ablated = PerfSim(off).simulate(kCnn);
  if (!latency_neutral) {
    EXPECT_GE(ablated.seconds, base.seconds * 0.999);
  }
  EXPECT_GE(ablated.energy_per_frame_j, base.energy_per_frame_j * 0.95);
}

INSTANTIATE_TEST_SUITE_P(Opts, OptimizationMonotone, ::testing::Range(0, 4));

TEST(PerfSim, ShorterStreamsFaster) {
  HwConfig fast = HwConfig::ulp();  // 32,64
  HwConfig slow = HwConfig::ulp();
  slow.stream_len_pool = 128;
  slow.stream_len = 128;
  const double t_fast = PerfSim(fast).simulate(kCnn).seconds;
  const double t_slow = PerfSim(slow).simulate(kCnn).seconds;
  EXPECT_GT(t_slow / t_fast, 1.8) << "128-streams should be ~2-4x slower";
}

TEST(PerfSim, ShadowBufferingHidesReload) {
  HwConfig base = HwConfig::base_ulp();
  HwConfig gen = HwConfig::geo_gen_ulp();
  const double t_base = PerfSim(base).simulate(kCnn).seconds;
  const double t_gen = PerfSim(gen).simulate(kCnn).seconds;
  EXPECT_GT(t_base / t_gen, 1.2)
      << "paper: progressive shadow buffering gives ~1.7x speedup";
  EXPECT_LT(t_base / t_gen, 3.0);
}

TEST(PerfSim, StallsVanishWithProgressiveShadow) {
  // At 128-bit streams (the GEO-GEN operating point) the compute phase is
  // long enough for the shadow buffers to hide the whole reload. Shorter
  // streams legitimately leave residual stalls.
  HwConfig hw = HwConfig::ulp();
  hw.stream_len_pool = 128;
  hw.stream_len = 128;
  const PerfSim sim(hw);
  const Compiler c(hw);
  const LayerPlan plan = c.plan_layer(kCnn.layers[1],
                                      Dataflow::kWeightStationary);
  EXPECT_LT(sim.pass_stall_cycles(plan), plan.stream_cycles * 0.2);
}

TEST(PerfSim, SerialReloadStallsWithoutOptimizations) {
  HwConfig hw = HwConfig::base_ulp();
  const PerfSim sim(hw);
  const Compiler c(hw);
  const LayerPlan plan =
      c.plan_layer(kCnn.layers[1], Dataflow::kOutputStationary);
  EXPECT_GT(sim.pass_stall_cycles(plan), 0.0);
}

TEST(PerfSim, UlpPeakMatchesPaper) {
  // GEO ULP-32,64: 640 GOPS, ~13 TOPS/W (Table II).
  const PerfSim sim(HwConfig::ulp());
  EXPECT_NEAR(sim.peak_gops(), 640.0, 1.0);
  EXPECT_GT(sim.peak_tops_per_watt(), 5.0);
  EXPECT_LT(sim.peak_tops_per_watt(), 40.0);
}

TEST(PerfSim, Ulp1632DoublesPeak) {
  HwConfig hw = HwConfig::ulp();
  hw.stream_len_pool = 16;
  hw.stream_len = 32;
  EXPECT_NEAR(PerfSim(hw).peak_gops(), 1280.0, 2.0);
}

TEST(PerfSim, ExternalMemoryCanBound) {
  // VGG on LP streams ~15 MB of weights per frame: external bandwidth must
  // show up in the runtime.
  HwConfig hw = HwConfig::lp();
  const PerfResult r = PerfSim(hw).simulate(NetworkShape::vgg16());
  EXPECT_GT(r.energy.external_memory, 0.0);
  HwConfig no_ext = hw;
  no_ext.external_memory = false;
  const PerfResult r_no_ext = PerfSim(no_ext).simulate(NetworkShape::vgg16());
  EXPECT_LE(r_no_ext.seconds, r.seconds + 1e-12);
  EXPECT_LT(r_no_ext.energy_per_frame_j, r.energy_per_frame_j);
}

TEST(PerfSim, EnergyBreakdownItemsSumToTotal) {
  const PerfResult r = PerfSim(HwConfig::ulp()).simulate(kCnn);
  double sum = 0;
  for (const auto& [name, j] : r.energy.items()) sum += j;
  EXPECT_NEAR(sum, r.energy.total(), r.energy.total() * 1e-9);
}

TEST(PerfSim, LeakageScalesWithRuntime) {
  HwConfig fast = HwConfig::ulp();
  HwConfig slow = fast;
  slow.stream_len = 128;
  slow.stream_len_pool = 128;
  const PerfResult rf = PerfSim(fast).simulate(kCnn);
  const PerfResult rs = PerfSim(slow).simulate(kCnn);
  EXPECT_GT(rs.energy.leakage, rf.energy.leakage);
}

TEST(PerfSim, UlpPowerInPaperBallpark) {
  // Paper Table II: GEO ULP at 48 mW (we accept a generous band — the model
  // is calibrated, not fitted per-workload).
  const PerfResult r = PerfSim(HwConfig::ulp()).simulate(kCnn);
  EXPECT_GT(r.average_power_w, 0.010);
  EXPECT_LT(r.average_power_w, 0.150);
}

TEST(PerfSim, UlpFrameRateInPaperBallpark) {
  // Paper: 14k frames/s for CNN-4/CIFAR on GEO ULP-32,64.
  const PerfResult r = PerfSim(HwConfig::ulp()).simulate(kCnn);
  EXPECT_GT(r.frames_per_second, 4e3);
  EXPECT_LT(r.frames_per_second, 60e3);
}

}  // namespace
}  // namespace geo::arch
