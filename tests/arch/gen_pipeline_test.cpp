#include "arch/gen_pipeline_sim.hpp"

#include <gtest/gtest.h>

namespace geo::arch {
namespace {

GenPipelineConfig base_cfg() {
  GenPipelineConfig c;
  c.values = 800;
  c.value_bits = 8;
  c.lfsr_bits = 7;
  c.fill_bits_per_cycle = 32;
  c.stream_cycles = 256;
  c.passes = 8;
  return c;
}

TEST(GenPipeline, SerialReloadBaseline) {
  const GenPipelineConfig c = base_cfg();
  const GenPipelineResult r = simulate_generation(c);
  // 800 values * 8 bits / 32 = 200 reload cycles per pass, fully exposed.
  EXPECT_EQ(r.reload_start_latency, 200);
  EXPECT_EQ(r.total_cycles, 8 * (200 + 256));
  EXPECT_EQ(r.stall_cycles, 8 * 200);
}

TEST(GenPipeline, ProgressiveCutsStartLatency4x) {
  GenPipelineConfig c = base_cfg();
  c.progressive = true;
  const GenPipelineResult r = simulate_generation(c);
  // Start after the 2-bit MSB plane: 800*2/32 = 50 cycles = 4x less than the
  // 200-cycle full reload (Sec. II-B: "reduces the latency overhead of
  // reloading by 4X").
  EXPECT_EQ(r.reload_start_latency, 50);
  const GenPipelineResult serial = simulate_generation(base_cfg());
  EXPECT_NEAR(static_cast<double>(serial.reload_start_latency) /
                  static_cast<double>(r.reload_start_latency),
              4.0, 0.01);
}

TEST(GenPipeline, ProgressiveReducesMemoryTraffic) {
  GenPipelineConfig c = base_cfg();
  c.progressive = true;  // only 7 of 8 bits ever load (lfsr-matched)
  const GenPipelineResult prog = simulate_generation(c);
  const GenPipelineResult norm = simulate_generation(base_cfg());
  EXPECT_LT(prog.bits_loaded, norm.bits_loaded);
  EXPECT_EQ(norm.bits_loaded, 8LL * 800 * 8);
  EXPECT_EQ(prog.bits_loaded, 8LL * 800 * 7);
}

TEST(GenPipeline, ShadowPlusProgressiveHidesReloadCompletely) {
  GenPipelineConfig c = base_cfg();
  c.progressive = true;
  c.shadow = true;
  const GenPipelineResult r = simulate_generation(c);
  // After the first pass's 50-cycle start, every reload hides under compute
  // (5600 bits fit easily in 256 cycles * 32 bits).
  EXPECT_EQ(r.stall_cycles, 50);
  EXPECT_EQ(r.total_cycles, 50 + 8 * 256);
}

TEST(GenPipeline, EndToEndSpeedupInPaperRange) {
  // Fig. 6 GEN vs Base: ~1.7x from progressive shadow buffering.
  GenPipelineConfig serial = base_cfg();
  GenPipelineConfig optimized = base_cfg();
  optimized.progressive = true;
  optimized.shadow = true;
  const double t_serial =
      static_cast<double>(simulate_generation(serial).total_cycles);
  const double t_opt =
      static_cast<double>(simulate_generation(optimized).total_cycles);
  EXPECT_GT(t_serial / t_opt, 1.4);
  EXPECT_LT(t_serial / t_opt, 2.2);
}

TEST(GenPipeline, BandwidthBoundStillStalls) {
  // If the fill port cannot deliver a pass's bits within one compute phase,
  // even shadow buffering leaves residual stalls.
  GenPipelineConfig c = base_cfg();
  c.progressive = true;
  c.shadow = true;
  c.fill_bits_per_cycle = 4;  // starved port: 1400 cycles needed per pass
  const GenPipelineResult r = simulate_generation(c);
  EXPECT_GT(r.stall_cycles, 8 * 256);
}

TEST(GenPipeline, TraceProducedOnRequest) {
  GenPipelineConfig c = base_cfg();
  c.passes = 3;
  const GenPipelineResult r = simulate_generation(c, /*keep_trace=*/true);
  EXPECT_EQ(r.trace.size(), 3u);
  EXPECT_NE(r.trace[0].find("pass 0"), std::string::npos);
}

TEST(GenPipeline, ShadowAloneStillHelps) {
  GenPipelineConfig shadow_only = base_cfg();
  shadow_only.shadow = true;
  const auto r_shadow = simulate_generation(shadow_only);
  const auto r_serial = simulate_generation(base_cfg());
  EXPECT_LT(r_shadow.total_cycles, r_serial.total_cycles);
}

}  // namespace
}  // namespace geo::arch
