#include "arch/program_validator.hpp"

#include <gtest/gtest.h>

#include <string>

#include "arch/compiler.hpp"

namespace geo::arch {
namespace {

Program minimal_program() {
  Program p;
  p.push(Opcode::kConfig, 64, 6, 1);
  p.push(Opcode::kLoadWgt, 10);
  p.push(Opcode::kLoadAct, 10);
  p.push(Opcode::kBarrier);
  p.push(Opcode::kGenExec, 128, 4);
  p.push(Opcode::kStoreOut, 4);
  p.push(Opcode::kHalt);
  return p;
}

TEST(ProgramValidator, AcceptsMinimalProgram) {
  EXPECT_TRUE(validate_program(minimal_program()).ok());
}

TEST(ProgramValidator, AcceptsEveryCompilerEmission) {
  // Whatever the compiler emits for the paper networks under every hardware
  // flavor must pass validation — the validator encodes the ISA contract the
  // compiler already honors.
  const HwConfig configs[] = {HwConfig::ulp(), HwConfig::lp(),
                              HwConfig::base_ulp()};
  const NetworkShape nets[] = {NetworkShape::cnn4_cifar(),
                               NetworkShape::lenet5()};
  for (const auto& hw : configs) {
    const Compiler c(hw);
    for (const auto& net : nets)
      for (const auto& plan : c.compile(net)) {
        const geo::Status s = validate_program(plan.program);
        EXPECT_TRUE(s.ok()) << net.name << "/" << plan.shape.name << ": "
                            << s.to_string();
      }
  }
}

TEST(ProgramValidator, RejectsEmptyProgram) {
  const geo::Status s = validate_program(Program{});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ProgramValidator, RejectsMissingHalt) {
  Program p;
  p.push(Opcode::kConfig, 64, 6, 1);
  p.push(Opcode::kGenExec, 128, 4);
  const geo::Status s = validate_program(p);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("halt"), std::string::npos) << s.to_string();
}

TEST(ProgramValidator, RejectsCodeAfterHalt) {
  Program p = minimal_program();
  p.push(Opcode::kNop);
  const geo::Status s = validate_program(p);
  EXPECT_FALSE(s.ok());
  // The diagnostic names the offending instruction index.
  EXPECT_NE(s.message().find("program[7]"), std::string::npos)
      << s.to_string();
}

TEST(ProgramValidator, RejectsBadConfig) {
  const struct {
    std::int32_t len, lfsr, accum;
  } bad[] = {
      {63, 6, 1},     // not a power of two
      {1, 6, 1},      // below minimum
      {64, 1, 1},     // LFSR too narrow
      {64, 25, 1},    // LFSR too wide
      {64, 6, 5},     // unknown accumulation mode
      {64, 6, -1},    // unknown accumulation mode
  };
  for (const auto& c : bad) {
    Program p;
    p.push(Opcode::kConfig, c.len, c.lfsr, c.accum);
    p.push(Opcode::kHalt);
    const geo::Status s = validate_program(p);
    EXPECT_FALSE(s.ok()) << c.len << " " << c.lfsr << " " << c.accum;
    EXPECT_NE(s.message().find("program[0] config"), std::string::npos)
        << s.to_string();
  }
}

TEST(ProgramValidator, RejectsExecutionBeforeConfig) {
  Program p;
  p.push(Opcode::kGenExec, 128, 4);
  p.push(Opcode::kHalt);
  EXPECT_FALSE(validate_program(p).ok());
}

TEST(ProgramValidator, RejectsDataMovementBeforeExecution) {
  for (const Opcode op : {Opcode::kNearMemAcc, Opcode::kStoreOut}) {
    Program p;
    p.push(Opcode::kConfig, 64, 6, 1);
    p.push(op, 4);
    p.push(Opcode::kHalt);
    EXPECT_FALSE(validate_program(p).ok()) << mnemonic(op);
  }
}

TEST(ProgramValidator, RejectsDegenerateGenExec) {
  for (const auto& [cycles, outputs] : {std::pair{0, 4}, std::pair{128, 0}}) {
    Program p;
    p.push(Opcode::kConfig, 64, 6, 1);
    p.push(Opcode::kGenExec, cycles, outputs);
    p.push(Opcode::kHalt);
    EXPECT_FALSE(validate_program(p).ok()) << cycles << "x" << outputs;
  }
}

TEST(ProgramValidator, RejectsNegativeCounts) {
  Program q;
  q.push(Opcode::kConfig, 64, 6, 1);
  q.push(Opcode::kLoadWgt, -5);
  q.push(Opcode::kHalt);
  EXPECT_FALSE(validate_program(q).ok());
}

}  // namespace
}  // namespace geo::arch
