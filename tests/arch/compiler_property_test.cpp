// Randomized invariants of the layer compiler across a swept shape space:
// whatever the layer, the plan must cover all outputs, account access
// counts consistently, and preserve the dataflow cost ordering the paper's
// Sec. III-C argues from.
#include <gtest/gtest.h>

#include <random>

#include "arch/compiler.hpp"
#include "arch/perf_sim.hpp"

namespace geo::arch {
namespace {

struct ShapeCase {
  ConvShape shape;
  HwConfig hw;
};

std::vector<ShapeCase> sweep_cases() {
  std::vector<ShapeCase> cases;
  std::mt19937 rng(2024);
  std::uniform_int_distribution<int> cin_dist(1, 96);
  std::uniform_int_distribution<int> size_dist(4, 32);
  std::uniform_int_distribution<int> cout_dist(1, 160);
  std::uniform_int_distribution<int> kernel_pick(0, 2);
  std::bernoulli_distribution pool_dist(0.4);
  std::bernoulli_distribution lp_dist(0.3);
  const int kernels[] = {1, 3, 5};
  for (int i = 0; i < 40; ++i) {
    const int k = kernels[kernel_pick(rng)];
    ShapeCase c{ConvShape::conv("sweep" + std::to_string(i), cin_dist(rng),
                                size_dist(rng), cout_dist(rng), k, k / 2,
                                pool_dist(rng)),
                lp_dist(rng) ? HwConfig::lp() : HwConfig::ulp()};
    cases.push_back(c);
  }
  // Plus FC layers.
  for (int i = 0; i < 8; ++i)
    cases.push_back({ConvShape::fc("fc" + std::to_string(i),
                                   16 << i % 6, 10 + 13 * i, i % 2 == 0),
                     HwConfig::ulp()});
  return cases;
}

TEST(CompilerProperty, PlansCoverAllOutputsForEveryShape) {
  for (const auto& c : sweep_cases()) {
    const Compiler compiler(c.hw);
    const LayerPlan plan =
        compiler.plan_layer(c.shape, Dataflow::kWeightStationary);
    // passes x (channels x windows per pass) must cover every output at
    // least kernel_slices times.
    const std::int64_t chans =
        std::min<std::int64_t>(c.shape.cout, c.hw.rows);
    const std::int64_t covered =
        plan.passes * chans * plan.windows_per_pass;
    EXPECT_GE(covered, c.shape.outputs() * plan.kernel_slices)
        << c.shape.name;
    EXPECT_GT(plan.passes, 0) << c.shape.name;
    EXPECT_GE(plan.kernel_slices, 1) << c.shape.name;
  }
}

TEST(CompilerProperty, AccessCountsSaneForEveryShape) {
  for (const auto& c : sweep_cases()) {
    const Compiler compiler(c.hw);
    for (Dataflow df : {Dataflow::kWeightStationary,
                        Dataflow::kOutputStationary,
                        Dataflow::kInputStationary}) {
      const LayerPlan plan = compiler.plan_layer(c.shape, df);
      const AccessCounts& a = plan.accesses;
      EXPECT_GE(a.wgt_reads, c.shape.weights())
          << c.shape.name << " " << to_string(df)
          << ": every weight is read at least once";
      EXPECT_GE(a.act_reads, c.shape.activations())
          << c.shape.name << " " << to_string(df);
      EXPECT_GT(a.act_writes, 0) << c.shape.name;
      EXPECT_EQ(a.psum_reads, a.psum_writes) << "read-add-write pairs";
      EXPECT_GE(a.total(), a.act_memory_total());
    }
  }
}

TEST(CompilerProperty, WeightStationaryNeverWorseOnWeightTraffic) {
  for (const auto& c : sweep_cases()) {
    const Compiler compiler(c.hw);
    const auto ws =
        compiler.plan_layer(c.shape, Dataflow::kWeightStationary);
    const auto os =
        compiler.plan_layer(c.shape, Dataflow::kOutputStationary);
    const auto is =
        compiler.plan_layer(c.shape, Dataflow::kInputStationary);
    EXPECT_LE(ws.accesses.wgt_reads, os.accesses.wgt_reads) << c.shape.name;
    EXPECT_LE(ws.accesses.wgt_reads, is.accesses.wgt_reads) << c.shape.name;
  }
}

TEST(CompilerProperty, PsumTrafficOnlyWhenKernelSliced) {
  for (const auto& c : sweep_cases()) {
    const Compiler compiler(c.hw);
    const auto ws =
        compiler.plan_layer(c.shape, Dataflow::kWeightStationary);
    if (ws.kernel_slices > 1) {
      EXPECT_GT(ws.accesses.psum_reads, 0) << c.shape.name;
    } else {
      EXPECT_EQ(ws.accesses.psum_reads, 0) << c.shape.name;
    }
  }
}

TEST(CompilerProperty, PerfSimFiniteForEveryShape) {
  for (const auto& c : sweep_cases()) {
    NetworkShape net;
    net.name = c.shape.name;
    net.layers = {c.shape};
    const PerfResult r = PerfSim(c.hw).simulate(net);
    EXPECT_GT(r.cycles, 0) << c.shape.name;
    EXPECT_GT(r.energy_per_frame_j, 0) << c.shape.name;
    EXPECT_TRUE(std::isfinite(r.frames_per_second)) << c.shape.name;
    EXPECT_TRUE(std::isfinite(r.average_power_w)) << c.shape.name;
  }
}

TEST(CompilerProperty, MoreRowsNeverMoreComputeCycles) {
  // Fabric monotonicity holds for *compute* cycles (fewer passes). Total
  // latency is not monotone: wider passes need more buffer-fill bandwidth,
  // so stalls can grow — a real effect the reload model captures.
  for (const auto& c : sweep_cases()) {
    HwConfig big = c.hw;
    big.rows *= 2;
    NetworkShape net;
    net.layers = {c.shape};
    auto compute_cycles = [&](const HwConfig& hw) {
      double total = 0;
      for (const auto& l : PerfSim(hw).simulate(net).layers)
        total += l.compute_cycles;
      return total;
    };
    EXPECT_LE(compute_cycles(big), compute_cycles(c.hw) * 1.001)
        << c.shape.name;
  }
}

TEST(CompilerProperty, ProgramsAlwaysWellFormed) {
  for (const auto& c : sweep_cases()) {
    const Compiler compiler(c.hw);
    const LayerPlan plan =
        compiler.plan_layer(c.shape, compiler.natural_dataflow());
    ASSERT_FALSE(plan.program.empty()) << c.shape.name;
    EXPECT_EQ(plan.program[0].op, Opcode::kConfig);
    EXPECT_EQ(plan.program.instructions().back().op, Opcode::kHalt);
    // Encode/decode round trip of the whole program.
    const Program decoded = Program::decode(plan.program.encode());
    ASSERT_EQ(decoded.size(), plan.program.size());
    for (std::size_t i = 0; i < decoded.size(); ++i)
      EXPECT_EQ(decoded[i], plan.program[i]) << c.shape.name << " inst " << i;
  }
}

}  // namespace
}  // namespace geo::arch
