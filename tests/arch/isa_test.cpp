#include "arch/isa.hpp"

#include <gtest/gtest.h>

#include <set>

namespace geo::arch {
namespace {

TEST(Instruction, EncodeDecodeRoundTrip) {
  const Instruction insts[] = {
      {Opcode::kNop, 0, 0, 0},
      {Opcode::kConfig, 64, 6, 1},
      {Opcode::kGenExec, 256, 512, 0},
      {Opcode::kNearMemAcc, 512, 0, 0},
      {Opcode::kLoadWgt, 32767, -32768, 5},
      {Opcode::kHalt, 0, 0, 0},
  };
  for (const Instruction& i : insts) {
    EXPECT_EQ(Instruction::decode(i.encode()), i) << i.to_string();
  }
}

TEST(Instruction, EncodeRejectsWideOperands) {
  const Instruction bad{Opcode::kLoadAct, 40000, 0, 0};
  EXPECT_THROW(bad.encode(), std::out_of_range);
}

TEST(Instruction, DecodeRejectsBadOpcode) {
  EXPECT_THROW(Instruction::decode(0xFFull << 56), std::invalid_argument);
}

TEST(Instruction, ParsePrintRoundTrip) {
  for (const char* text :
       {"genexec 256 512", "loadwgt 50", "barrier", "halt",
        "config 64 6 1", "nmacc 512"}) {
    const Instruction i = Instruction::parse(text);
    EXPECT_EQ(i.to_string(), text);
  }
}

TEST(Instruction, ParseRejectsGarbage) {
  EXPECT_THROW(Instruction::parse("frobnicate 3"), std::invalid_argument);
  EXPECT_THROW(Instruction::parse(""), std::invalid_argument);
}

TEST(Program, TextRoundTrip) {
  Program p;
  p.push(Opcode::kConfig, 128, 7, 1);
  p.push(Opcode::kLoadWgt, 50);
  p.push(Opcode::kLoadAct, 480);
  p.push(Opcode::kBarrier);
  p.push(Opcode::kGenExec, 256, 512);
  p.push(Opcode::kHalt);
  const Program q = Program::from_text(p.to_text());
  ASSERT_EQ(q.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_EQ(q[i], p[i]);
}

TEST(Program, TextIgnoresCommentsAndBlanks) {
  const Program p = Program::from_text(
      "# GEO layer kernel\n\n  genexec 64 8  # run\nhalt\n");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].op, Opcode::kGenExec);
  EXPECT_EQ(p[1].op, Opcode::kHalt);
}

TEST(Program, BinaryRoundTrip) {
  Program p;
  p.push(Opcode::kGenExec, 256, 128);
  p.push(Opcode::kNearMemBn, 1024 % 32768);
  p.push(Opcode::kHalt);
  const Program q = Program::decode(p.encode());
  ASSERT_EQ(q.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_EQ(q[i], p[i]);
}

TEST(Program, Append) {
  Program a, b;
  a.push(Opcode::kLoadWgt, 1);
  b.push(Opcode::kHalt);
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a[1].op, Opcode::kHalt);
}

TEST(Mnemonics, AllDistinct) {
  std::set<std::string> names;
  for (int op = 0; op <= static_cast<int>(Opcode::kHalt); ++op)
    EXPECT_TRUE(names.insert(mnemonic(static_cast<Opcode>(op))).second);
}

}  // namespace
}  // namespace geo::arch
