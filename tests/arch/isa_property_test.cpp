// Property test: the three Instruction representations (struct, 64-bit
// binary word, assembly text) round-trip exactly for every opcode and for
// the boundary operand values, and every malformed input takes the
// structured error path instead of crashing.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "arch/isa.hpp"

namespace geo::arch {
namespace {

constexpr Opcode kAllOpcodes[] = {
    Opcode::kNop,     Opcode::kConfig,     Opcode::kLoadWgt,
    Opcode::kLoadAct, Opcode::kGenExec,    Opcode::kNearMemAcc,
    Opcode::kNearMemBn, Opcode::kPool,     Opcode::kStoreOut,
    Opcode::kLoadExt, Opcode::kBarrier,    Opcode::kHalt,
};

constexpr std::int32_t kBoundaryOperands[] = {0, 1, -1, 32767, -32768};

TEST(IsaProperty, EncodeDecodeRoundTripsEveryOpcodeAndBoundary) {
  for (const Opcode op : kAllOpcodes)
    for (const std::int32_t a : kBoundaryOperands)
      for (const std::int32_t b : kBoundaryOperands)
        for (const std::int32_t c : kBoundaryOperands) {
          const Instruction inst{op, a, b, c};
          const Instruction back = Instruction::decode(inst.encode());
          EXPECT_EQ(back, inst) << inst.to_string();
        }
}

TEST(IsaProperty, TextRoundTripsEveryOpcodeAndBoundary) {
  // to_string omits trailing zero operands; parse must refill them so the
  // struct round-trips regardless of which operand slots are populated.
  for (const Opcode op : kAllOpcodes)
    for (const std::int32_t v : kBoundaryOperands)
      for (int slot = 0; slot < 3; ++slot) {
        Instruction inst{op, 0, 0, 0};
        (slot == 0 ? inst.arg0 : slot == 1 ? inst.arg1 : inst.arg2) = v;
        const auto parsed = Instruction::try_parse(inst.to_string());
        ASSERT_TRUE(parsed.ok()) << inst.to_string() << " -> "
                                 << parsed.status().to_string();
        EXPECT_EQ(*parsed, inst) << inst.to_string();
      }
}

TEST(IsaProperty, MnemonicsAreUniqueAndParseBack) {
  for (const Opcode op : kAllOpcodes) {
    const auto parsed = Instruction::try_parse(mnemonic(op));
    ASSERT_TRUE(parsed.ok()) << mnemonic(op);
    EXPECT_EQ(parsed->op, op);
  }
}

TEST(IsaProperty, EncodeRejectsOperandsBeyond16Bits) {
  for (const std::int32_t v : {32768, 65535, -32769, 1 << 20}) {
    const Instruction inst{Opcode::kLoadWgt, v, 0, 0};
    EXPECT_THROW(inst.encode(), std::out_of_range) << v;
  }
}

TEST(IsaProperty, ParseRejectsOutOfRangeOperands) {
  for (const char* line :
       {"loadwgt 32768", "loadwgt 65535", "loadwgt -32769",
        "genexec 1 65536"}) {
    const auto parsed = Instruction::try_parse(line);
    ASSERT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(parsed.status().code(), StatusCode::kOutOfRange) << line;
  }
}

TEST(IsaProperty, ParseRejectsMalformedLines) {
  for (const char* line :
       {"", "   ", "frobnicate 1", "nop 1 2 3 4", "loadwgt twelve",
        "loadwgt 1.5", "loadwgt 0x10", "config 64 6 1 extra"}) {
    const auto parsed = Instruction::try_parse(line);
    ASSERT_FALSE(parsed.ok()) << "'" << line << "' parsed";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << line;
    EXPECT_THROW(Instruction::parse(line), std::invalid_argument) << line;
  }
}

TEST(IsaProperty, DecodeRejectsUnknownOpcodeBytes) {
  const std::uint64_t bad = static_cast<std::uint64_t>(200) << 56;
  EXPECT_THROW(Instruction::decode(bad), std::invalid_argument);
}

TEST(IsaProperty, ProgramTextAndBinaryRoundTrip) {
  Program p;
  p.push(Opcode::kConfig, 64, 6, 1);
  p.push(Opcode::kLoadWgt, 32767);
  p.push(Opcode::kGenExec, 128, 400);
  p.push(Opcode::kNearMemAcc, -32768);
  p.push(Opcode::kHalt);

  const Program from_text = Program::from_text(p.to_text());
  ASSERT_EQ(from_text.size(), p.size());
  const Program from_bin = Program::decode(p.encode());
  ASSERT_EQ(from_bin.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(from_text[i], p[i]) << i;
    EXPECT_EQ(from_bin[i], p[i]) << i;
  }
}

}  // namespace
}  // namespace geo::arch
