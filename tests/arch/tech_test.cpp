#include "arch/tech.hpp"

#include <gtest/gtest.h>

namespace geo::arch {
namespace {

TEST(Tech, AreaScaleQuadratic) {
  EXPECT_NEAR(area_scale(28, 14), 0.25, 1e-9);
  EXPECT_NEAR(area_scale(28, 28), 1.0, 1e-9);
  EXPECT_GT(area_scale(28, 65), 1.0);
}

TEST(Tech, EnergyAndDelayShrinkWithNode) {
  EXPECT_LT(energy_scale(65, 28), 1.0);
  EXPECT_LT(delay_scale(65, 28), 1.0);
  EXPECT_GT(energy_scale(28, 65), 1.0);
}

TEST(Tech, DynamicEnergyIsVSquared) {
  EXPECT_NEAR(dynamic_energy_scale(0.81, 0.9), 0.81, 1e-9);
  EXPECT_NEAR(dynamic_energy_scale(0.9, 0.9), 1.0, 1e-9);
}

TEST(Tech, LeakageDropsWithVoltage) {
  EXPECT_LT(leakage_power_scale(0.81, 0.9), 1.0);
  EXPECT_NEAR(leakage_power_scale(0.9, 0.9), 1.0, 1e-9);
}

TEST(Tech, GateDelayGrowsAsVoltageDrops) {
  const TechParams t = TechParams::hvt28();
  EXPECT_NEAR(gate_delay_scale(t, t.vdd_nominal), 1.0, 1e-9);
  EXPECT_GT(gate_delay_scale(t, 0.7), 1.0);
  EXPECT_GT(gate_delay_scale(t, 0.6), gate_delay_scale(t, 0.7));
}

TEST(Tech, MinVddNoSlackReturnsNominal) {
  const TechParams t = TechParams::hvt28();
  EXPECT_DOUBLE_EQ(min_vdd_for_delay(t, 2.5, 2.5), t.vdd_nominal);
  EXPECT_DOUBLE_EQ(min_vdd_for_delay(t, 3.0, 2.5), t.vdd_nominal);
}

TEST(Tech, MinVddUsesSlack) {
  const TechParams t = TechParams::hvt28();
  const double v = min_vdd_for_delay(t, 1.5, 2.5);
  EXPECT_LT(v, t.vdd_nominal);
  EXPECT_GT(v, t.vth);
  // The lowered voltage must still meet timing.
  EXPECT_LE(1.5 * gate_delay_scale(t, v), 2.5 * 1.001);
}

TEST(Tech, MinVddMonotoneInSlack) {
  const TechParams t = TechParams::hvt28();
  const double little = min_vdd_for_delay(t, 2.2, 2.5);
  const double lots = min_vdd_for_delay(t, 1.2, 2.5);
  EXPECT_LT(lots, little);
}

}  // namespace
}  // namespace geo::arch
