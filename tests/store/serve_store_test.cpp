// Serving from the out-of-core weight store (docs/STORAGE.md): store-backed
// requests resolve weights at dispatch, admission rejects malformed store
// references at the door, and — the headline contract — with persistent CRC
// corruption injected into every shard, zero admitted requests fail and
// every response is byte-identical to resident-weight serving.
#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "fault/fault_model.hpp"
#include "serve/serve.hpp"
#include "store/weight_store.hpp"

namespace geo::serve {
namespace {

using arch::ConvShape;
using arch::HwConfig;
using fault::FaultConfig;

struct Fixture {
  ConvShape shape;
  std::vector<float> weights, input, ones, zeros;

  explicit Fixture(unsigned seed = 77) {
    shape = ConvShape::conv("t", 4, 6, 5, 3, 1, false);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(shape.weights()));
    for (auto& w : weights) w = wdist(rng);
    input.resize(static_cast<std::size_t>(shape.activations()));
    for (auto& a : input) a = adist(rng);
    ones.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    zeros.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }

  Request resident_request() const {
    Request r;
    r.shape = shape;
    r.weights = weights;
    r.input = input;
    r.bn_scale = ones;
    r.bn_shift = zeros;
    r.layer_salt = 9;
    return r;
  }

  Request store_request() const {
    Request r = resident_request();
    r.weights = {};
    r.store_layer = "t";
    return r;
  }
};

HwConfig small_hw() {
  HwConfig hw = HwConfig::ulp();
  hw.accum = nn::AccumMode::kPbw;
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;
  return hw;
}

std::shared_ptr<store::WeightStore> make_store(const Fixture& fx,
                                               const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/serve_store_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  store::StoreOptions o;
  o.dir = dir;
  o.block_bytes = 256;
  o.shard_bytes = 1024;
  auto ws = std::make_shared<store::WeightStore>(o);
  EXPECT_TRUE(ws->add_layer("t", fx.weights).ok());
  return ws;
}

ServeOptions base_options() {
  ServeOptions o;
  o.retry_backoff_us = 0;
  return o;
}

TEST(ServeStore, StoreBackedRequestMatchesResidentServing) {
  const Fixture fx;
  ServeOptions o = base_options();
  o.replicas = 2;
  InferenceServer server(small_hw(), o);
  for (int r = 0; r < o.replicas; ++r)
    server.set_replica_fault(r, FaultConfig{});  // shield ambient GEO_FAULTS
  server.attach_store(make_store(fx, "match"));

  const Response resident = server.run(fx.resident_request());
  ASSERT_TRUE(resident.status.ok()) << resident.status.to_string();
  const Response backed = server.run(fx.store_request());
  ASSERT_TRUE(backed.status.ok()) << backed.status.to_string();
  EXPECT_EQ(backed.result.activations, resident.result.activations);
  EXPECT_EQ(backed.result.counters, resident.result.counters);
}

TEST(ServeStore, AdmissionRejectsMalformedStoreReferencesAtTheDoor) {
  const Fixture fx;
  ServeOptions o = base_options();
  o.replicas = 1;
  InferenceServer server(small_hw(), o);

  // No store attached yet.
  auto r1 = server.submit(fx.store_request());
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kFailedPrecondition);

  server.attach_store(make_store(fx, "reject"));

  // Unknown layer.
  Request unknown = fx.store_request();
  unknown.store_layer = "nope";
  auto r2 = server.submit(std::move(unknown));
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  // Both a resident span and a store reference.
  Request both = fx.resident_request();
  both.store_layer = "t";
  auto r3 = server.submit(std::move(both));
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.rejected_invalid, 3);
  EXPECT_EQ(stats.admitted, 0);
}

TEST(ServeStore, ZeroFailuresWithPersistentCorruptionInEveryShard) {
  const Fixture fx;
  ServeOptions o = base_options();
  o.replicas = 2;
  InferenceServer server(small_hw(), o);
  auto ws = make_store(fx, "corrupt");
  server.attach_store(ws);

  // Defect-model rot at rate 1.0 hits every block of every shard on every
  // replica; the store's ladder must drain to resident fallback, so serving
  // sees correct bytes and the "zero failed requests" contract holds.
  FaultConfig rot;
  rot.io_rot_rate = 1.0;
  rot.rng_seed = 31;
  for (int r = 0; r < o.replicas; ++r) server.set_replica_fault(r, rot);

  const Response resident = [&] {
    InferenceServer clean(small_hw(), base_options());
    for (int r = 0; r < clean.options().replicas; ++r)
      clean.set_replica_fault(r, FaultConfig{});
    return clean.run(fx.resident_request());
  }();
  ASSERT_TRUE(resident.status.ok());

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 12; ++i) {
    auto fut = server.submit(fx.store_request());
    ASSERT_TRUE(fut.ok()) << fut.status().to_string();
    futures.push_back(std::move(*fut));
  }
  for (auto& fut : futures) {
    Response resp = fut.get();
    ASSERT_TRUE(resp.status.ok()) << resp.status.to_string();
    EXPECT_EQ(resp.result.activations, resident.result.activations);
    EXPECT_EQ(resp.result.counters, resident.result.counters);
  }
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.completed, 12);
}

}  // namespace
}  // namespace geo::serve
