// Out-of-core weight store (docs/STORAGE.md): GEOSTOR block-file round
// trips and the fail-closed open matrix, the detect/reread/quarantine/
// rebuild/fallback repair ladder under real and injected damage, LRU cache
// bounds, prefetch hit/miss accounting, the AsyncLane FIFO contract, and
// end-to-end out-of-core conv execution that stays byte-identical to
// resident weights under every fault model.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "exec/async_lane.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_model.hpp"
#include "resilience/resilience.hpp"
#include "store/block_file.hpp"
#include "store/prefetch.hpp"
#include "store/weight_store.hpp"

namespace geo::store {
namespace {

using fault::FaultConfig;
using fault::ScopedFaultInjection;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/store_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<float> ramp(std::size_t n, float scale = 0.01f) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = scale * static_cast<float>(i % 251) - 1.0f;
  return v;
}

StoreOptions small_options(const std::string& dir) {
  StoreOptions o;
  o.dir = dir;
  o.block_bytes = 256;   // many blocks per shard
  o.shard_bytes = 1024;  // several shards per layer
  o.rereads = 3;
  o.reread_backoff = 16;
  return o;
}

// Flips one byte somewhere in the payload region of a shard file on disk.
void damage_file(const std::string& path, std::uint64_t payload_offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(f.tellg());
  ASSERT_GT(size, payload_offset);
  f.seekg(static_cast<std::streamoff>(payload_offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(payload_offset));
  f.write(&byte, 1);
}

// ---------------------------------------------------------------- BlockFile

TEST(BlockFile, RoundTripsWithShortLastBlock) {
  ScopedFaultInjection shield{nullptr};  // clean-disk test under any ambient GEO_FAULTS
  const std::string dir = fresh_dir("bf_roundtrip");
  const std::string path = dir + "/layer.geostor";
  const std::vector<float> data = ramp(100);  // 400 B: 3x128 + 16 tail
  ASSERT_TRUE(write_block_file(path, data, 128, 7).ok());

  auto f = BlockFile::open(path);
  ASSERT_TRUE(f.ok()) << f.status().to_string();
  EXPECT_EQ(f->block_count(), 4u);
  EXPECT_EQ(f->block_bytes(), 128u);
  EXPECT_EQ(f->payload_bytes(), 400u);
  EXPECT_EQ(f->block_size(3), 16u);

  std::vector<float> back(data.size());
  std::vector<unsigned char> buf;
  for (std::uint32_t i = 0; i < f->block_count(); ++i) {
    ASSERT_TRUE(f->read_block(i, buf, 7).ok());
    std::memcpy(reinterpret_cast<char*>(back.data()) + i * 128, buf.data(),
                buf.size());
  }
  EXPECT_EQ(back, data);
}

TEST(BlockFile, EmptyPayloadRoundTrips) {
  ScopedFaultInjection shield{nullptr};  // clean-disk test under any ambient GEO_FAULTS
  const std::string dir = fresh_dir("bf_empty");
  const std::string path = dir + "/empty.geostor";
  ASSERT_TRUE(write_block_file(path, {}, 64, 1).ok());
  auto f = BlockFile::open(path);
  ASSERT_TRUE(f.ok()) << f.status().to_string();
  EXPECT_EQ(f->block_count(), 0u);
  EXPECT_EQ(f->payload_bytes(), 0u);
}

TEST(BlockFile, OpenFailsClosedOnForeignAndDamagedFiles) {
  ScopedFaultInjection shield{nullptr};  // clean-disk test under any ambient GEO_FAULTS
  const std::string dir = fresh_dir("bf_failclosed");

  {  // foreign magic
    const std::string path = dir + "/foreign.geostor";
    std::ofstream(path, std::ios::binary)
        << "NOTGEOSTOR-PADDED-PAST-THE-FIXED-HEADER-SO-MAGIC-DECIDES";
    auto f = BlockFile::open(path);
    ASSERT_FALSE(f.ok());
    EXPECT_EQ(f.status().code(), StatusCode::kInvalidArgument);
  }
  {  // missing
    auto f = BlockFile::open(dir + "/missing.geostor");
    ASSERT_FALSE(f.ok());
    EXPECT_EQ(f.status().code(), StatusCode::kFailedPrecondition);
  }
  {  // truncated payload (a torn write without the fault hooks)
    const std::string path = dir + "/torn.geostor";
    ASSERT_TRUE(write_block_file(path, ramp(64), 64, 2).ok());
    const auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full - 10);
    auto f = BlockFile::open(path);
    ASSERT_FALSE(f.ok());
    EXPECT_EQ(f.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(f.status().message().find("truncated"), std::string::npos);
  }
  {  // version skew
    const std::string path = dir + "/version.geostor";
    ASSERT_TRUE(write_block_file(path, ramp(16), 64, 3).ok());
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    const char future[4] = {99, 0, 0, 0};
    f.write(future, 4);
    f.close();
    auto reopened = BlockFile::open(path);
    ASSERT_FALSE(reopened.ok());
    EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(reopened.status().message().find("version"), std::string::npos);
  }
}

TEST(BlockFile, OnDiskBitFlipIsCaughtByThatBlocksCrc) {
  ScopedFaultInjection shield{nullptr};  // clean-disk test under any ambient GEO_FAULTS
  const std::string dir = fresh_dir("bf_bitflip");
  const std::string path = dir + "/flip.geostor";
  const std::vector<float> data = ramp(128);  // 512 B = 4 blocks of 128
  ASSERT_TRUE(write_block_file(path, data, 128, 4).ok());
  // Damage one byte inside block 2's payload: header(32) + crcs(16) + 2*128.
  damage_file(path, 32 + 16 + 2 * 128 + 5);

  auto f = BlockFile::open(path);
  ASSERT_TRUE(f.ok()) << f.status().to_string();
  std::vector<unsigned char> buf;
  EXPECT_TRUE(f->read_block(0, buf, 4).ok());
  EXPECT_TRUE(f->read_block(1, buf, 4).ok());
  const geo::Status bad = f->read_block(2, buf, 4);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kDataLoss);
  EXPECT_NE(bad.message().find("CRC"), std::string::npos);
  EXPECT_TRUE(f->read_block(3, buf, 4).ok());
}

// -------------------------------------------------------------- WeightStore

TEST(WeightStore, PinRoundTripsAndCachesWithModeledStall) {
  ScopedFaultInjection shield{nullptr};  // clean-disk test under any ambient GEO_FAULTS
  WeightStore store(small_options(fresh_dir("ws_roundtrip")));
  const std::vector<float> data = ramp(700);  // 2800 B: 3 shards
  ASSERT_TRUE(store.add_layer("conv1", data).ok());
  EXPECT_EQ(store.layer_floats("conv1"), 700u);

  auto p = store.pin("conv1");
  ASSERT_TRUE(p.ok()) << p.status().to_string();
  ASSERT_EQ(p->span().size(), data.size());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), p->span().begin()));
  EXPECT_FALSE(p->stats().cache_hit);
  EXPECT_EQ(p->stats().bytes, 2800);
  // One cycle per 64-byte beat, deterministic.
  EXPECT_EQ(p->stats().io_stall_cycles, (2800 + 63) / 64);
  EXPECT_EQ(p->stats().fallback_blocks, 0);

  auto again = store.pin("conv1");
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->stats().cache_hit);
  EXPECT_EQ(again->stats().io_stall_cycles, 0);
  // Shared payload: the cache and both pins alias one buffer.
  EXPECT_EQ(again->span().data(), p->span().data());
}

TEST(WeightStore, FailsClosedOnInvalidOptionsAndUnknownLayers) {
  StoreOptions bad;
  bad.dir = "";  // required
  WeightStore store(bad);
  EXPECT_EQ(store.add_layer("x", ramp(4)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.pin("x").status().code(), StatusCode::kInvalidArgument);

  StoreOptions odd = small_options(fresh_dir("ws_badblock"));
  odd.block_bytes = 6;  // not a multiple of 4
  EXPECT_FALSE(odd.validate().ok());

  WeightStore good(small_options(fresh_dir("ws_unknown")));
  EXPECT_EQ(good.pin("nope").status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(good.add_layer("a", ramp(8)).ok());
  EXPECT_EQ(good.add_layer("a", ramp(8)).code(),
            StatusCode::kInvalidArgument);  // duplicate
}

TEST(WeightStore, RealOnDiskDamageIsRepairedByRebuild) {
  ScopedFaultInjection shield{nullptr};  // clean-disk test under any ambient GEO_FAULTS
  const std::string dir = fresh_dir("ws_repair");
  WeightStore store(small_options(dir));
  const std::vector<float> data = ramp(700);
  ASSERT_TRUE(store.add_layer("w", data).ok());

  // Scratch the middle shard's payload on disk.
  damage_file(dir + "/w.s1.geostor", 200);

  auto p = store.pin("w");
  ASSERT_TRUE(p.ok()) << p.status().to_string();
  EXPECT_TRUE(std::equal(data.begin(), data.end(), p->span().begin()));
  EXPECT_GT(p->stats().crc_failures, 0);
  EXPECT_GE(p->stats().rebuilds, 1);
  EXPECT_EQ(p->stats().fallback_blocks, 0) << "real damage must repair";

  // The rebuild rewrote the shard: a fresh verify pass over the file is
  // clean and a fresh (uncached) store reads it without incident.
  WeightStore fresh(small_options(dir));
  // (separate instance cannot pin unregistered layers; verify via BlockFile)
  auto f = BlockFile::open(dir + "/w.s1.geostor");
  ASSERT_TRUE(f.ok());
  std::vector<unsigned char> buf;
  for (std::uint32_t b = 0; b < f->block_count(); ++b)
    EXPECT_TRUE(f->read_block(b, buf, 0).ok());
}

TEST(WeightStore, TransientIoErrorsRecoverViaRereadsWithBackoffCharged) {
  WeightStore store(small_options(fresh_dir("ws_transient")));
  const std::vector<float> data = ramp(700);
  ASSERT_TRUE(store.add_layer("w", data).ok());

  FaultConfig cfg;
  cfg.io_error_rate = 0.3;
  cfg.io_short_read_rate = 0.1;
  cfg.rng_seed = 99;
  ScopedFaultInjection scope(cfg);

  auto p = store.pin("w");
  ASSERT_TRUE(p.ok()) << p.status().to_string();
  EXPECT_TRUE(std::equal(data.begin(), data.end(), p->span().begin()));
  EXPECT_GT(p->stats().rereads, 0) << "rates this high must trigger rereads";
  // Backoff cycles ride on top of the transfer beats.
  EXPECT_GT(p->stats().io_stall_cycles, (2800 + 63) / 64);
}

TEST(WeightStore, BlanketDefectRotDrainsToResidentFallbackBitExact) {
  WeightStore store(small_options(fresh_dir("ws_rot")));
  const std::vector<float> data = ramp(700);
  ASSERT_TRUE(store.add_layer("w", data).ok());

  FaultConfig cfg;
  cfg.io_rot_rate = 1.0;  // every block of every shard, persistently
  cfg.rng_seed = 5;
  ScopedFaultInjection scope(cfg);

  auto p = store.pin("w");
  ASSERT_TRUE(p.ok()) << p.status().to_string();
  // Repair-or-fallback, never silence: with rot pinned to every block the
  // ladder must land every block on the resident source, bit-exactly.
  EXPECT_TRUE(std::equal(data.begin(), data.end(), p->span().begin()));
  const std::int64_t total_blocks = (2800 + 255) / 256 + 2;  // short tails
  EXPECT_GE(p->stats().fallback_blocks, total_blocks - 2);
  EXPECT_GT(p->stats().quarantined, 0);
  EXPECT_GE(p->stats().rebuilds, 1);
}

TEST(WeightStore, TornRebuildFromShortWriteStillServesFromSource) {
  WeightStore store(small_options(fresh_dir("ws_torn")));
  const std::vector<float> data = ramp(300);
  ASSERT_TRUE(store.add_layer("w", data).ok());

  // Rot forces a rebuild; the rebuild's write is itself torn; reads of the
  // torn file fail closed and the shard serves from source.
  FaultConfig cfg;
  cfg.io_rot_rate = 1.0;
  cfg.io_short_write_rate = 1.0;
  cfg.rng_seed = 11;
  ScopedFaultInjection scope(cfg);

  auto p = store.pin("w");
  ASSERT_TRUE(p.ok()) << p.status().to_string();
  EXPECT_TRUE(std::equal(data.begin(), data.end(), p->span().begin()));
  EXPECT_GT(p->stats().fallback_blocks, 0);
}

TEST(WeightStore, LruCacheHonorsByteBudget) {
  ScopedFaultInjection shield{nullptr};  // clean-disk test under any ambient GEO_FAULTS
  StoreOptions o = small_options(fresh_dir("ws_lru"));
  o.cache_bytes = 3000;  // fits one 2800 B layer, not two
  WeightStore store(o);
  ASSERT_TRUE(store.add_layer("a", ramp(700)).ok());
  ASSERT_TRUE(store.add_layer("b", ramp(700, 0.02f)).ok());

  ASSERT_TRUE(store.pin("a").ok());
  EXPECT_EQ(store.cached_bytes(), 2800);
  ASSERT_TRUE(store.pin("b").ok());  // evicts a
  EXPECT_EQ(store.cached_bytes(), 2800);
  auto a = store.pin("a");
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->stats().cache_hit) << "a must have been evicted";
  auto b = store.pin("b");
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->stats().cache_hit) << "pinning a evicted b in turn";

  StoreOptions uncached = small_options(fresh_dir("ws_nocache"));
  uncached.cache_bytes = 0;
  WeightStore none(uncached);
  ASSERT_TRUE(none.add_layer("a", ramp(16)).ok());
  ASSERT_TRUE(none.pin("a").ok());
  EXPECT_EQ(none.cached_bytes(), 0);
}

TEST(WeightStore, EvictionNeverInvalidatesAnOutstandingPin) {
  ScopedFaultInjection shield{nullptr};  // clean-disk test under any ambient GEO_FAULTS
  StoreOptions o = small_options(fresh_dir("ws_pin_alive"));
  o.cache_bytes = 3000;
  WeightStore store(o);
  const std::vector<float> data = ramp(700);
  ASSERT_TRUE(store.add_layer("a", data).ok());
  ASSERT_TRUE(store.add_layer("b", ramp(700, 0.02f)).ok());

  auto a = store.pin("a");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(store.pin("b").ok());  // evicts a from the cache
  // The pinned span still reads the full payload.
  EXPECT_TRUE(std::equal(data.begin(), data.end(), a->span().begin()));
}

TEST(WeightStore, ScrubRepairsRealDamageInPlace) {
  ScopedFaultInjection shield{nullptr};  // clean-disk test under any ambient GEO_FAULTS
  const std::string dir = fresh_dir("ws_scrub");
  WeightStore store(small_options(dir));
  ASSERT_TRUE(store.add_layer("w", ramp(700)).ok());
  damage_file(dir + "/w.s0.geostor", 100);
  damage_file(dir + "/w.s2.geostor", 150);

  ScrubReport r = store.scrub();
  EXPECT_EQ(r.layers, 1);
  EXPECT_GT(r.crc_failures, 0);
  EXPECT_EQ(r.shards_rebuilt, 2);
  EXPECT_EQ(r.unrecoverable, 0);

  // A second pass over the repaired files is clean.
  ScrubReport again = store.scrub();
  EXPECT_EQ(again.crc_failures, 0);
  EXPECT_EQ(again.shards_rebuilt, 0);

  // And the async variant completes on the I/O lane.
  damage_file(dir + "/w.s1.geostor", 120);
  store.scrub_async().get();
  EXPECT_EQ(store.scrub().crc_failures, 0);
}

TEST(StoreOptions, FromEnvParsesSizesAndFailsClosed) {
  ::setenv("GEO_STORE_CACHE_MB", "2", 1);
  ::setenv("GEO_STORE_BLOCK_KB", "16KiB", 1);  // explicit suffix: 16 KiB
  ::setenv("GEO_STORE_SHARD_MB", "garbage", 1);
  ::setenv("GEO_STORE_REREADS", "5", 1);
  StoreOptions o = StoreOptions::from_env("/tmp/x");
  EXPECT_EQ(o.cache_bytes, 2ll << 20);
  EXPECT_EQ(o.block_bytes, 16ll << 10);
  EXPECT_EQ(o.shard_bytes, 4ll << 20) << "malformed value keeps the default";
  EXPECT_EQ(o.rereads, 5);
  EXPECT_TRUE(o.validate().ok());
  ::unsetenv("GEO_STORE_CACHE_MB");
  ::unsetenv("GEO_STORE_BLOCK_KB");
  ::unsetenv("GEO_STORE_SHARD_MB");
  ::unsetenv("GEO_STORE_REREADS");
}

// --------------------------------------------------------------- Prefetcher

TEST(Prefetcher, HitZeroesStallMissChargesIt) {
  ScopedFaultInjection shield{nullptr};  // clean-disk test under any ambient GEO_FAULTS
  WeightStore store(small_options(fresh_dir("pf_hitmiss")));
  const std::vector<float> data = ramp(700);
  ASSERT_TRUE(store.add_layer("next", data).ok());
  ASSERT_TRUE(store.add_layer("cold", data).ok());

  Prefetcher pf(store);
  std::atomic<int> warmed{0};
  pf.prefetch("next", [&](const Pinned& p) {
    if (p.span().size() == 700) warmed.fetch_add(1);
  });
  auto hit = pf.get("next");
  ASSERT_TRUE(hit.ok()) << hit.status().to_string();
  EXPECT_TRUE(hit->stats().prefetched);
  EXPECT_EQ(hit->stats().io_stall_cycles, 0) << "overlapped load: no stall";
  EXPECT_EQ(warmed.load(), 1);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), hit->span().begin()));

  auto miss = pf.get("cold");
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->stats().prefetched);
  EXPECT_GT(miss->stats().io_stall_cycles, 0) << "sync load: full stall";
  EXPECT_EQ(pf.in_flight(), 0u);
}

TEST(Prefetcher, PrefetchIsIdempotentWhileInFlightAndDrainsOnDestruction) {
  WeightStore store(small_options(fresh_dir("pf_idem")));
  ASSERT_TRUE(store.add_layer("w", ramp(700)).ok());
  {
    Prefetcher pf(store);
    pf.prefetch("w");
    pf.prefetch("w");  // no second issue
    EXPECT_LE(pf.in_flight(), 1u);
    // Destruction with an unconsumed prefetch must not race the store.
  }
  WeightStore store2(small_options(fresh_dir("pf_faulty")));
  const std::vector<float> data = ramp(700);
  ASSERT_TRUE(store2.add_layer("w", data).ok());
  // The lane inherits the submitter's fault scope: a prefetch issued under
  // blanket rot still resolves bit-exactly via the ladder.
  FaultConfig cfg;
  cfg.io_rot_rate = 1.0;
  cfg.rng_seed = 21;
  ScopedFaultInjection scope(cfg);
  Prefetcher pf(store2);
  pf.prefetch("w");
  auto p = pf.get("w");
  ASSERT_TRUE(p.ok()) << p.status().to_string();
  EXPECT_TRUE(std::equal(data.begin(), data.end(), p->span().begin()));
  EXPECT_GT(p->stats().fallback_blocks, 0);
}

// ---------------------------------------------------------------- AsyncLane

TEST(AsyncLane, RunsFifoPropagatesExceptionsAndDrainsOnDestruction) {
  std::vector<int> order;
  std::mutex mu;
  {
    exec::AsyncLane lane;
    std::future<void> boom;
    for (int i = 0; i < 8; ++i) {
      auto fut = lane.submit([&, i] {
        std::lock_guard lock(mu);
        order.push_back(i);
      });
      if (i == 3) boom = lane.submit([] { throw std::runtime_error("x"); });
    }
    EXPECT_THROW(boom.get(), std::runtime_error);
  }  // destruction drains the queue
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(AsyncLane, NestedSubmitRunsInlineInsteadOfDeadlocking) {
  exec::AsyncLane lane;
  std::atomic<bool> inner_ran{false};
  lane.submit([&] { lane.submit([&] { inner_ran = true; }).get(); }).get();
  EXPECT_TRUE(inner_ran.load());
}

// --------------------------------------------- out-of-core conv execution

class OutOfCoreConv : public ::testing::TestWithParam<int> {};

TEST_P(OutOfCoreConv, MatchesResidentExecutionUnderEveryFaultModel) {
  exec::ScopedThreads threads(GetParam());
  const arch::ConvShape shape = arch::ConvShape::conv("oc", 4, 6, 5, 3, 1,
                                                      false);
  std::mt19937 rng(77);
  std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
  std::uniform_real_distribution<float> adist(0.0f, 1.0f);
  std::vector<float> weights(static_cast<std::size_t>(shape.weights()));
  for (auto& w : weights) w = wdist(rng);
  std::vector<float> input(static_cast<std::size_t>(shape.activations()));
  for (auto& a : input) a = adist(rng);
  const std::vector<float> ones(static_cast<std::size_t>(shape.cout), 1.0f);
  const std::vector<float> zeros(static_cast<std::size_t>(shape.cout), 0.0f);

  arch::HwConfig hw = arch::HwConfig::ulp();
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;

  // Resident baseline, no store involved.
  resilience::ResilientExecutor baseline(hw);
  auto want = baseline.run_conv(shape, weights, input, ones, zeros, 1, "oc");
  ASSERT_TRUE(want.ok());

  StoreOptions o = small_options(fresh_dir(
      "oc_conv_t" + std::to_string(GetParam())));
  o.cache_bytes = 0;  // every pin walks the disk path (and the ladder)
  WeightStore store(o);
  ASSERT_TRUE(store.add_layer("oc", weights).ok());

  // Clean disk, then blanket persistent rot in every shard: the acceptance
  // bar is byte-identical activations and counters either way.
  for (const double rot : {0.0, 1.0}) {
    std::optional<ScopedFaultInjection> scope;
    if (rot > 0) {
      FaultConfig cfg;
      cfg.io_rot_rate = rot;
      cfg.rng_seed = 13;
      scope.emplace(cfg);
    }
    auto pinned = store.pin("oc");
    ASSERT_TRUE(pinned.ok()) << pinned.status().to_string();

    resilience::ResilientExecutor executor(hw);
    resilience::RunOptions run;
    run.io_stall_cycles = pinned->stats().io_stall_cycles;
    auto got = executor.run_conv(shape, pinned->span(), input, ones, zeros, 1,
                                 "oc", run);
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    EXPECT_EQ(got->activations, want->activations) << "rot=" << rot;
    EXPECT_EQ(got->counters, want->counters) << "rot=" << rot;
    // The load stall landed in the io sub-bucket and the ledger still
    // reconciles (always-on check inside the machine would have thrown).
    if (!pinned->stats().cache_hit) {
      EXPECT_EQ(got->stats.io_stall_cycles, run.io_stall_cycles);
      EXPECT_GE(got->stats.stall_cycles, got->stats.io_stall_cycles);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, OutOfCoreConv, ::testing::Values(1, 4));

}  // namespace
}  // namespace geo::store
