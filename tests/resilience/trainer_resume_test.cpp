// Crash-safe trainer checkpoint/resume: a killed-and-resumed run must land
// on bit-identical final weights, and anything wrong with a snapshot
// (foreign options, corruption) must fall back to training from scratch —
// never a partially-applied restore.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "nn/dataset.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "resilience/checkpoint.hpp"

namespace geo::nn {
namespace {

class TrainerResume : public ::testing::Test {
 protected:
  void SetUp() override {
    // These tests control checkpointing through TrainOptions alone; ambient
    // env (e.g. from a CI job) must not leak in.
    ::unsetenv("GEO_CHECKPOINT_DIR");
    ::unsetenv("GEO_CRASH_AFTER_EPOCH");
  }

  static std::string fresh_dir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
  }

  static TrainOptions quick_options(int epochs) {
    TrainOptions o;
    o.epochs = epochs;
    o.batch_size = 16;
    o.verbose = false;
    return o;
  }

  static Sequential fresh_net() {
    return make_lenet5(1, 10, ScModelConfig::float_model(), 7);
  }

  // Every trainable scalar plus every state tensor (BN running stats),
  // flattened — "bit-identical weights" means this whole vector matches.
  static std::vector<float> snapshot(Sequential& net) {
    std::vector<float> out;
    for (Param* p : net.params())
      out.insert(out.end(), p->value.data().begin(), p->value.data().end());
    for (Tensor* t : net.state())
      out.insert(out.end(), t->data().begin(), t->data().end());
    return out;
  }

  static bool bit_identical(const std::vector<float>& a,
                            const std::vector<float>& b) {
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
  }
};

TEST_F(TrainerResume, FinalSnapshotRestoresBitIdenticalWeights) {
  const Dataset train_set = make_digits(96, 31);
  const Dataset test_set = make_digits(48, 32);
  TrainOptions o = quick_options(3);
  o.checkpoint_dir = fresh_dir("resume_roundtrip");
  o.checkpoint_key = "roundtrip";

  Sequential a = fresh_net();
  const TrainResult first = train(a, train_set, test_set, o);
  EXPECT_EQ(first.resumed_from_epoch, -1);
  EXPECT_EQ(first.checkpoints_written, 3);

  // A fresh same-init net resumes from the final snapshot: zero epochs left
  // to run, weights restored exactly.
  Sequential b = fresh_net();
  const TrainResult second = train(b, train_set, test_set, o);
  EXPECT_EQ(second.resumed_from_epoch, o.epochs);
  EXPECT_EQ(second.checkpoints_written, 0);
  EXPECT_TRUE(bit_identical(snapshot(a), snapshot(b)));
  EXPECT_NEAR(second.test_accuracy, first.test_accuracy, 1e-12);
}

TEST_F(TrainerResume, KillAndResumeMatchesUninterruptedRun) {
  const Dataset train_set = make_digits(96, 33);
  const Dataset test_set = make_digits(48, 34);
  TrainOptions o = quick_options(4);
  o.checkpoint_dir = fresh_dir("resume_kill");
  o.checkpoint_key = "killed";

  // The child process dies (exit 42) right after committing the epoch-2
  // snapshot — the mid-training kill, simulated in-process.
  EXPECT_EXIT(
      {
        ::setenv("GEO_CRASH_AFTER_EPOCH", "2", 1);
        const Dataset ts = make_digits(96, 33);
        const Dataset es = make_digits(48, 34);
        Sequential victim = fresh_net();
        train(victim, ts, es, o);
      },
      ::testing::ExitedWithCode(42), "");

  // Resume in this process: picks up at epoch 2 and finishes.
  Sequential resumed = fresh_net();
  const TrainResult r = train(resumed, train_set, test_set, o);
  EXPECT_EQ(r.resumed_from_epoch, 2);

  // The uninterrupted control run, checkpointing disabled.
  Sequential control = fresh_net();
  const TrainResult c = train(control, train_set, test_set, quick_options(4));
  EXPECT_EQ(c.resumed_from_epoch, -1);

  EXPECT_TRUE(bit_identical(snapshot(resumed), snapshot(control)))
      << "kill + resume must be bit-identical to never having crashed";
}

TEST_F(TrainerResume, ForeignOptionsSnapshotIsRejected) {
  const Dataset train_set = make_digits(64, 35);
  const Dataset test_set = make_digits(32, 36);
  TrainOptions o = quick_options(2);
  o.checkpoint_dir = fresh_dir("resume_foreign");
  o.checkpoint_key = "foreign";

  Sequential a = fresh_net();
  train(a, train_set, test_set, o);

  // Same snapshot, different hyperparameters: the fingerprint must reject
  // it and training must start from scratch, not resume.
  TrainOptions other = o;
  other.lr *= 0.5f;
  Sequential b = fresh_net();
  const TrainResult r = train(b, train_set, test_set, other);
  EXPECT_EQ(r.resumed_from_epoch, -1);
  EXPECT_EQ(r.checkpoints_written, 2);
}

TEST_F(TrainerResume, CorruptSnapshotFallsBackToScratch) {
  const Dataset train_set = make_digits(64, 37);
  const Dataset test_set = make_digits(32, 38);
  TrainOptions o = quick_options(2);
  o.checkpoint_dir = fresh_dir("resume_corrupt");
  o.checkpoint_key = "corrupt";

  Sequential a = fresh_net();
  train(a, train_set, test_set, o);

  // Truncate the snapshot mid-payload.
  const std::string path = o.checkpoint_dir + "/corrupt.ckpt";
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);

  Sequential b = fresh_net();
  const TrainResult r = train(b, train_set, test_set, o);
  EXPECT_EQ(r.resumed_from_epoch, -1) << "corrupt snapshot must fail closed";

  // And the from-scratch rerun still matches a never-checkpointed control.
  Sequential control = fresh_net();
  train(control, train_set, test_set, quick_options(2));
  EXPECT_TRUE(bit_identical(snapshot(b), snapshot(control)));
}

TEST_F(TrainerResume, BitFlippedSnapshotIsRejectedByCrcAndStartsFresh) {
  const Dataset train_set = make_digits(64, 37);
  const Dataset test_set = make_digits(32, 38);
  TrainOptions o = quick_options(2);
  o.checkpoint_dir = fresh_dir("resume_bitflip");
  o.checkpoint_key = "bitflip";

  Sequential a = fresh_net();
  train(a, train_set, test_set, o);

  // Flip a single byte mid-payload of the committed (fsync'd) snapshot —
  // the whole-image CRC must reject it with kDataLoss, never serve it.
  const std::string path = o.checkpoint_dir + "/bitflip.ckpt";
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    const auto size = std::filesystem::file_size(path);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&byte, 1);
  }
  const auto read_back = resilience::read_checkpoint(path);
  ASSERT_FALSE(read_back.ok());
  EXPECT_EQ(read_back.status().code(), StatusCode::kDataLoss);

  // The trainer treats the poisoned snapshot as absent and starts fresh,
  // matching a never-checkpointed control bit for bit.
  Sequential b = fresh_net();
  const TrainResult r = train(b, train_set, test_set, o);
  EXPECT_EQ(r.resumed_from_epoch, -1);
  Sequential control = fresh_net();
  train(control, train_set, test_set, quick_options(2));
  EXPECT_TRUE(bit_identical(snapshot(b), snapshot(control)));
}

TEST_F(TrainerResume, CheckpointEveryThrottlesSnapshots) {
  const Dataset train_set = make_digits(64, 39);
  const Dataset test_set = make_digits(32, 40);
  TrainOptions o = quick_options(5);
  o.checkpoint_dir = fresh_dir("resume_every");
  o.checkpoint_key = "every";
  o.checkpoint_every = 2;

  Sequential net = fresh_net();
  const TrainResult r = train(net, train_set, test_set, o);
  // Epochs 2 and 4, plus the guaranteed final-epoch snapshot.
  EXPECT_EQ(r.checkpoints_written, 3);
}

TEST_F(TrainerResume, NoDirectoryMeansNoCheckpoints) {
  const Dataset train_set = make_digits(64, 41);
  const Dataset test_set = make_digits(32, 42);
  Sequential net = fresh_net();
  const TrainResult r = train(net, train_set, test_set, quick_options(2));
  EXPECT_EQ(r.resumed_from_epoch, -1);
  EXPECT_EQ(r.checkpoints_written, 0);
}

}  // namespace
}  // namespace geo::nn
