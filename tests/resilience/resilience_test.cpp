// The detect -> retry -> degrade runtime: policy parsing, the no-fault
// bit-identity contract, defect-model degradation to the fixed-point
// reference, transient-model recovery, deterministic retry decisions, and
// the PerfSim retry-cycle mirror.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <vector>

#include "arch/machine.hpp"
#include "arch/perf_sim.hpp"
#include "fault/fault_model.hpp"
#include "nn/sc_layers.hpp"
#include "resilience/resilience.hpp"
#include "telemetry/telemetry.hpp"

namespace geo::resilience {
namespace {

using arch::ConvShape;
using arch::GeoMachine;
using arch::HwConfig;
using arch::MachineResult;
using fault::EccMode;
using fault::FaultConfig;
using fault::ScopedFaultInjection;

struct Fixture {
  ConvShape shape;
  std::vector<float> weights, input, ones, zeros;

  explicit Fixture(unsigned seed = 77) {
    shape = ConvShape::conv("t", 4, 6, 5, 3, 1, false);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(shape.weights()));
    for (auto& w : weights) w = wdist(rng);
    input.resize(static_cast<std::size_t>(shape.activations()));
    for (auto& a : input) a = adist(rng);
    ones.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    zeros.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }
};

HwConfig small_hw(nn::AccumMode accum) {
  HwConfig hw = HwConfig::ulp();
  hw.accum = accum;
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;
  return hw;
}

TEST(RetryPolicy, ParseDefaultsAndValues) {
  auto d = RetryPolicy::parse("");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->retries, 2);
  EXPECT_EQ(d->backoff, 32);
  EXPECT_TRUE(d->guards);

  auto p = RetryPolicy::parse("retries=5,backoff=8,guards=0");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->retries, 5);
  EXPECT_EQ(p->backoff, 8);
  EXPECT_FALSE(p->guards);

  auto partial = RetryPolicy::parse("retries=0");
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->retries, 0);
  EXPECT_EQ(partial->backoff, 32);  // untouched keys keep their defaults
}

TEST(RetryPolicy, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(RetryPolicy::parse("retries=-1").ok());
  EXPECT_FALSE(RetryPolicy::parse("retries=99").ok());
  EXPECT_FALSE(RetryPolicy::parse("backoff=-4").ok());
  EXPECT_FALSE(RetryPolicy::parse("guards=2").ok());
  EXPECT_FALSE(RetryPolicy::parse("bogus=1").ok());
  EXPECT_FALSE(RetryPolicy::parse("retries").ok());
  EXPECT_FALSE(RetryPolicy::parse("retries=two").ok());
}

TEST(RetryPolicy, BackoffGrowsExponentially) {
  RetryPolicy p;
  p.backoff = 16;
  EXPECT_EQ(p.backoff_for(0), 16);
  EXPECT_EQ(p.backoff_for(1), 32);
  EXPECT_EQ(p.backoff_for(3), 128);
  // Deep attempts saturate instead of shifting into the sign bit.
  EXPECT_GT(p.backoff_for(62), 0);
}

TEST(RetryPolicy, MalformedEnvSpecWarnsIntoJournal) {
  auto& journal = telemetry::Journal::instance();
  const std::string path =
      (std::filesystem::temp_directory_path() / "geo_retry_env.jsonl")
          .string();
  std::filesystem::remove(path);
  journal.disable();
  journal.enable(path, 64);

  ::setenv("GEO_RETRY", "retries=banana", 1);
  const RetryPolicy p = RetryPolicy::from_env();
  ::unsetenv("GEO_RETRY");
  // The malformed spec is ignored, never fatal: defaults survive.
  EXPECT_EQ(p.retries, RetryPolicy{}.retries);
  EXPECT_EQ(p.backoff, RetryPolicy{}.backoff);

  // And the rejection is journaled so postmortems can see the config that
  // did NOT take effect.
  bool found = false;
  for (const auto& e : journal.snapshot())
    if (e.kind == "config.invalid" && e.label == "GEO_RETRY") {
      found = true;
      EXPECT_FALSE(e.note.empty()) << "diagnostic must carry the parse error";
    }
  EXPECT_TRUE(found);

  journal.disable();
  std::filesystem::remove(path);
}

TEST(ResilientExecutor, NoFaultsIsBitIdenticalToMachine) {
  const Fixture f;
  const HwConfig hw = small_hw(nn::AccumMode::kPbw);
  ScopedFaultInjection off(nullptr);  // shield from ambient GEO_FAULTS
  GeoMachine machine(hw);
  auto plain =
      machine.try_run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9);
  ASSERT_TRUE(plain.ok());

  ResilientExecutor exec(hw, RetryPolicy{});
  auto resilient =
      exec.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9, "clean");
  ASSERT_TRUE(resilient.ok()) << resilient.status().to_string();

  EXPECT_EQ(plain->counters, resilient->counters);
  EXPECT_EQ(plain->activations, resilient->activations);
  EXPECT_EQ(plain->stats.total_cycles, resilient->stats.total_cycles);
  EXPECT_TRUE(resilient->stats.ledger_ok);

  ASSERT_EQ(exec.report().layers.size(), 1u);
  const LayerOutcome& o = exec.report().layers[0];
  EXPECT_EQ(o.layer, "clean");
  EXPECT_EQ(o.rung, Rung::kNative);
  EXPECT_FALSE(o.degraded);
  EXPECT_EQ(o.tiles_retried, 0);
  EXPECT_EQ(o.retries, 0);
  EXPECT_EQ(o.retry_cycles(), 0);
  EXPECT_FALSE(exec.report().any_retried());
  EXPECT_FALSE(exec.report().any_degraded());
  EXPECT_TRUE(exec.report().ledger_ok());
}

TEST(ResilientExecutor, RejectsInvalidLayers) {
  const Fixture f;
  ResilientExecutor exec(small_hw(nn::AccumMode::kPbw), RetryPolicy{});
  // Weights span truncated: must surface the machine's validation error.
  auto r = exec.run_conv(f.shape,
                         std::span<const float>(f.weights).first(3), f.input,
                         f.ones, f.zeros, 9);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(exec.report().layers.empty());
}

TEST(ResilientExecutor, DefectFaultsDegradeToExactReference) {
  // A defect model reproduces the same corruption on every retry, so the
  // budget exhausts, every machine rung fails the same way, and the layer
  // bottoms out in the fixed-point reference — bit-exactly.
  const Fixture f;
  const HwConfig hw = small_hw(nn::AccumMode::kPbw);
  FaultConfig cfg;
  cfg.sram_error_rate = 2e-2;
  cfg.sram_burst = 2;  // bursts defeat SECDED correction -> detections
  cfg.ecc = EccMode::kSecded;
  cfg.rng_seed = 99;
  ScopedFaultInjection inject(cfg);

  RetryPolicy policy;
  policy.retries = 2;
  ResilientExecutor exec(hw, policy);
  auto r = exec.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9,
                         "defect");
  ASSERT_TRUE(r.ok()) << r.status().to_string();

  ASSERT_EQ(exec.report().layers.size(), 1u);
  const LayerOutcome& o = exec.report().layers[0];
  EXPECT_GE(o.tiles_retried, 1);
  EXPECT_TRUE(o.degraded);
  EXPECT_EQ(o.rung, Rung::kReference);
  EXPECT_GT(o.retries, 0);
  EXPECT_GT(o.retry_cycles(), 0);
  EXPECT_TRUE(exec.report().ledger_ok());

  const nn::ScLayerConfig lcfg = GeoMachine(hw).layer_config(f.shape, 9);
  const auto ref = nn::fxp_reference_counters(
      f.shape.cin, f.shape.hin, f.shape.win, f.shape.cout, f.shape.kh,
      f.shape.kw, f.shape.stride, f.shape.pad, f.weights, f.input,
      lcfg.value_bits, lcfg.stream_len);
  EXPECT_EQ(r->counters, ref);

  std::vector<std::uint8_t> act(ref.size());
  arch::apply_bn_relu(ref, f.ones, f.zeros, lcfg.stream_len,
                      static_cast<std::int64_t>(f.shape.hout()) *
                          f.shape.wout(),
                      act);
  EXPECT_EQ(r->activations, act);
}

TEST(ResilientExecutor, TransientFaultsRecoverWithoutDegrading) {
  // transient=1 re-rolls each access, so re-reading after invalidating the
  // tile's input streams can come back clean — the retry loop must convert
  // detections into recoveries instead of tripping the circuit breaker.
  const Fixture f;
  const HwConfig hw = small_hw(nn::AccumMode::kPbw);
  FaultConfig cfg;
  cfg.sram_error_rate = 2e-4;  // rare enough that a re-roll comes back clean
  cfg.sram_burst = 2;
  cfg.ecc = EccMode::kSecded;
  cfg.transient = true;
  cfg.rng_seed = 1;
  ScopedFaultInjection inject(cfg);

  RetryPolicy policy;
  policy.retries = 8;  // generous budget: recovery, not degradation
  ResilientExecutor exec(hw, policy);
  auto r = exec.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9,
                         "transient");
  ASSERT_TRUE(r.ok()) << r.status().to_string();

  ASSERT_EQ(exec.report().layers.size(), 1u);
  const LayerOutcome& o = exec.report().layers[0];
  EXPECT_GE(o.tiles_retried, 1);
  EXPECT_GE(o.tiles_recovered, 1);
  EXPECT_FALSE(o.degraded) << "transient faults should not exhaust "
                           << policy.retries << " retries";
  EXPECT_EQ(o.rung, Rung::kNative);
  EXPECT_GT(o.backoff_cycles, 0);
  EXPECT_TRUE(o.ledger_ok);
  EXPECT_TRUE(exec.report().ledger_ok());
}

TEST(ResilientExecutor, RetryDecisionsAreDeterministic) {
  // Same fault model + same policy => identical outputs AND identical
  // retry/degrade decisions, field for field.
  const Fixture f;
  const HwConfig hw = small_hw(nn::AccumMode::kPbw);
  FaultConfig cfg;
  cfg.sram_error_rate = 5e-3;
  cfg.sram_burst = 2;
  cfg.ecc = EccMode::kSecded;
  cfg.transient = true;
  cfg.rng_seed = 31;

  auto run = [&] {
    ScopedFaultInjection inject(cfg);
    RetryPolicy policy;
    policy.retries = 4;
    ResilientExecutor exec(hw, policy);
    auto r = exec.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9,
                           "det");
    EXPECT_TRUE(r.ok());
    return std::pair(std::move(*r), exec.take_report());
  };
  const auto [r1, rep1] = run();
  const auto [r2, rep2] = run();

  EXPECT_EQ(r1.counters, r2.counters);
  EXPECT_EQ(r1.activations, r2.activations);
  EXPECT_EQ(r1.stats.total_cycles, r2.stats.total_cycles);
  ASSERT_EQ(rep1.layers.size(), rep2.layers.size());
  for (std::size_t i = 0; i < rep1.layers.size(); ++i) {
    const LayerOutcome& a = rep1.layers[i];
    const LayerOutcome& b = rep2.layers[i];
    EXPECT_EQ(a.rung, b.rung);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.tiles_retried, b.tiles_retried);
    EXPECT_EQ(a.tiles_recovered, b.tiles_recovered);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.detections, b.detections);
    EXPECT_EQ(a.backoff_cycles, b.backoff_cycles);
    EXPECT_EQ(a.abandoned_cycles, b.abandoned_cycles);
  }
}

TEST(ResilientExecutor, BackoffCyclesLandInTheLedger) {
  // The accepted execution's stall bucket must absorb the backoff charge and
  // still reconcile — retry cost is visible, not off the books.
  const Fixture f;
  const HwConfig hw = small_hw(nn::AccumMode::kPbw);

  GeoMachine machine(hw);
  geo::StatusOr<MachineResult> clean = [&] {
    ScopedFaultInjection off(nullptr);  // the fault-free baseline
    return machine.try_run_conv(f.shape, f.weights, f.input, f.ones, f.zeros,
                                9);
  }();
  ASSERT_TRUE(clean.ok());

  FaultConfig cfg;
  cfg.sram_error_rate = 2e-4;
  cfg.sram_burst = 2;
  cfg.ecc = EccMode::kSecded;
  cfg.transient = true;
  cfg.rng_seed = 1;
  ScopedFaultInjection inject(cfg);
  RetryPolicy policy;
  policy.retries = 8;
  ResilientExecutor exec(hw, policy);
  auto r = exec.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9);
  ASSERT_TRUE(r.ok());
  const LayerOutcome& o = exec.report().layers[0];
  ASSERT_GT(o.backoff_cycles, 0);
  EXPECT_TRUE(r->stats.ledger_ok);
  // At least the backoff (plus recompute + ECC scrub cost) over clean.
  EXPECT_GE(r->stats.stall_cycles,
            clean->stats.stall_cycles + o.backoff_cycles);
  EXPECT_EQ(r->stats.total_cycles, r->stats.compute_cycles +
                                       r->stats.stall_cycles +
                                       r->stats.nearmem_cycles);
}

TEST(ResilienceReport, SummaryAndJsonCarryTheOutcome) {
  ResilienceReport rep;
  LayerOutcome o;
  o.layer = "conv1";
  o.rung = Rung::kReference;
  o.degraded = true;
  o.tiles = 0;
  o.tiles_retried = 2;
  o.retries = 4;
  o.detections[static_cast<int>(Detect::kSecdedDoubleBit)] = 3;
  o.backoff_cycles = 96;
  o.abandoned_cycles = 1000;
  rep.layers.push_back(o);

  EXPECT_TRUE(rep.any_degraded());
  EXPECT_TRUE(rep.any_retried());
  EXPECT_EQ(rep.total_retry_cycles(), 1096);
  ASSERT_EQ(rep.per_layer_retry_cycles().size(), 1u);
  EXPECT_EQ(rep.per_layer_retry_cycles()[0], 1096);

  const std::string s = rep.summary();
  EXPECT_NE(s.find("conv1"), std::string::npos);
  EXPECT_NE(s.find("reference"), std::string::npos);
  EXPECT_NE(s.find("secded_double_bit"), std::string::npos);

  const std::string j = rep.to_json();
  EXPECT_TRUE(telemetry::json_valid(j)) << j;
  EXPECT_NE(j.find("\"conv1\""), std::string::npos);
  EXPECT_NE(j.find("\"reference\""), std::string::npos);
}

TEST(PerfSimMirror, ApplyRetryCyclesUpdatesLatencyOnly) {
  arch::PerfResult r;
  arch::LayerPerf l0, l1;
  l0.compute_cycles = 800;
  l0.stall_cycles = 100;
  l0.nearmem_cycles = 100;
  l0.total_cycles = 1000;
  l1 = l0;
  r.layers = {l0, l1};
  r.cycles = 2000;
  r.energy_per_frame_j = 1e-6;
  const double clock_mhz = 100.0;
  r.seconds = r.cycles / (clock_mhz * 1e6);

  const std::vector<std::int64_t> retry = {500, 0};
  arch::apply_retry_cycles(r, retry, clock_mhz);

  EXPECT_DOUBLE_EQ(r.layers[0].stall_cycles, 600);
  EXPECT_DOUBLE_EQ(r.layers[0].total_cycles, 1500);
  EXPECT_DOUBLE_EQ(r.layers[1].total_cycles, 1000);
  EXPECT_DOUBLE_EQ(r.cycles, 2500);
  EXPECT_DOUBLE_EQ(r.seconds, 2500 / (clock_mhz * 1e6));
  EXPECT_DOUBLE_EQ(r.frames_per_second, 1.0 / r.seconds);
  // Energy untouched; power re-derived from the stretched latency.
  EXPECT_DOUBLE_EQ(r.energy_per_frame_j, 1e-6);
  EXPECT_DOUBLE_EQ(r.average_power_w, 1e-6 / r.seconds);
}

}  // namespace
}  // namespace geo::resilience
