// Crash-safe checkpoint format: round trips, atomicity leftovers, and the
// fail-closed rejection matrix (truncation, bit flips, version skew, foreign
// files, oversized length prefixes) — every malformed input must map to a
// descriptive non-OK Status and never surface a payload.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "resilience/checkpoint.hpp"
#include "resilience/crc32.hpp"

namespace geo::resilience {
namespace {

std::string tmp_file(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Crc32, KnownVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string_view("")), 0u);
}

TEST(Crc32, Chaining) {
  // Feeding a previous result as the seed continues the same CRC stream.
  const std::string_view all = "hello, checkpoint";
  EXPECT_EQ(crc32(all.substr(5), crc32(all.substr(0, 5))), crc32(all));
}

TEST(Checkpoint, RoundTrip) {
  const std::string path = tmp_file("ckpt_roundtrip.ckpt");
  std::string payload = "resilient payload ";
  payload += '\0';  // embedded NUL: the format is binary-clean
  payload += "\x01\x02 bytes";
  ASSERT_TRUE(write_checkpoint(path, payload).ok());
  auto back = read_checkpoint(path);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(*back, payload);
  std::filesystem::remove(path);
}

TEST(Checkpoint, EmptyPayloadRoundTrip) {
  const std::string path = tmp_file("ckpt_empty.ckpt");
  ASSERT_TRUE(write_checkpoint(path, "").ok());
  auto back = read_checkpoint(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
  std::filesystem::remove(path);
}

TEST(Checkpoint, CreatesParentDirectories) {
  const std::string path = tmp_file("ckpt_nested/a/b/deep.ckpt");
  ASSERT_TRUE(write_checkpoint(path, "nested").ok());
  EXPECT_TRUE(read_checkpoint(path).ok());
  std::filesystem::remove_all(tmp_file("ckpt_nested"));
}

TEST(Checkpoint, MissingFileFailsClosed) {
  auto r = read_checkpoint(tmp_file("ckpt_does_not_exist.ckpt"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().message().find("cannot open"), std::string::npos);
}

TEST(Checkpoint, HeaderTruncationFailsClosed) {
  const std::string path = tmp_file("ckpt_header_trunc.ckpt");
  ASSERT_TRUE(write_checkpoint(path, "payload").ok());
  spit(path, slurp(path).substr(0, 10));  // cut inside the header
  auto r = read_checkpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("truncated"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Checkpoint, PayloadTruncationFailsClosed) {
  const std::string path = tmp_file("ckpt_payload_trunc.ckpt");
  ASSERT_TRUE(write_checkpoint(path, "a longer payload to cut").ok());
  const std::string image = slurp(path);
  spit(path, image.substr(0, image.size() - 4));
  auto r = read_checkpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("truncated"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Checkpoint, BitFlipFailsClosedWithCrcDiagnostic) {
  const std::string path = tmp_file("ckpt_bitflip.ckpt");
  ASSERT_TRUE(write_checkpoint(path, "bytes that will be corrupted").ok());
  std::string image = slurp(path);
  image[image.size() - 3] = static_cast<char>(image[image.size() - 3] ^ 0x40);
  spit(path, image);
  auto r = read_checkpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("CRC mismatch"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Checkpoint, VersionSkewFailsClosed) {
  const std::string path = tmp_file("ckpt_version.ckpt");
  ASSERT_TRUE(write_checkpoint(path, "from the future").ok());
  std::string image = slurp(path);
  image[8] = static_cast<char>(kCheckpointVersion + 1);  // version field
  spit(path, image);
  auto r = read_checkpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Checkpoint, ForeignMagicFailsClosed) {
  const std::string path = tmp_file("ckpt_foreign.ckpt");
  spit(path, "PNGPNGPN definitely not a geo checkpoint, but long enough");
  auto r = read_checkpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Checkpoint, PartialRenameCrashLeavesTargetIntact) {
  // A crash between temp-write and rename leaves a stray .tmp.<pid> file;
  // the target must still read back as the previous complete snapshot, and
  // a reader pointed at the stray temp (a partial image) must fail closed.
  const std::string path = tmp_file("ckpt_partial_rename.ckpt");
  ASSERT_TRUE(write_checkpoint(path, "the committed snapshot").ok());
  const std::string stray = path + ".tmp.12345";
  spit(stray, slurp(path).substr(0, 12));  // half-written temp image
  auto committed = read_checkpoint(path);
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(*committed, "the committed snapshot");
  EXPECT_FALSE(read_checkpoint(stray).ok());
  std::filesystem::remove(path);
  std::filesystem::remove(stray);
}

TEST(Checkpoint, OverwriteReplacesAtomically) {
  const std::string path = tmp_file("ckpt_overwrite.ckpt");
  ASSERT_TRUE(write_checkpoint(path, "first").ok());
  ASSERT_TRUE(write_checkpoint(path, "second").ok());
  auto r = read_checkpoint(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "second");
  std::filesystem::remove(path);
}

TEST(ByteFraming, RoundTrip) {
  ByteWriter w;
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f32(-1.5f);
  w.bytes("hello");
  w.floats(std::vector<float>{1.0f, 2.5f, -3.25f});
  ByteReader r(w.data());
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f32(), -1.5f);
  EXPECT_EQ(r.bytes(), "hello");
  const auto f = r.floats();
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], 2.5f);
  EXPECT_TRUE(r.read_status().ok());
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteFraming, ReadPastEndFailsClosed) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u64(), 0u);  // past the end: poisoned zero
  EXPECT_FALSE(r.read_status().ok());
  EXPECT_EQ(r.read_status().code(), StatusCode::kDataLoss);
}

TEST(ByteFraming, OversizedLengthPrefixRejectedBeforeAllocation) {
  // A corrupted u64 length prefix must not drive a huge allocation.
  ByteWriter w;
  w.u64(0xFFFFFFFFFFFFull);  // claims ~280 TB of floats
  ByteReader r(w.data());
  EXPECT_TRUE(r.floats().empty());
  EXPECT_FALSE(r.read_status().ok());

  ByteWriter w2;
  w2.u64(1u << 30);  // claims 1 GiB of bytes that are not there
  ByteReader r2(w2.data());
  EXPECT_TRUE(r2.bytes().empty());
  EXPECT_FALSE(r2.read_status().ok());
}

}  // namespace
}  // namespace geo::resilience
