// The GEO_THREADS determinism contract: the same workload, seed, and fault
// spec must produce byte-identical conv outputs, resilience reports, and
// cycle ledgers at every thread count. These tests pin that contract at
// pool sizes 1, 2, and 8 within one process via ScopedThreads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_model.hpp"
#include "resilience/resilience.hpp"
#include "telemetry/metrics.hpp"

namespace geo {
namespace {

using arch::ConvShape;
using arch::GeoMachine;
using arch::HwConfig;
using arch::MachineResult;
using fault::EccMode;
using fault::FaultConfig;
using fault::ScopedFaultInjection;
using resilience::LayerOutcome;
using resilience::ResilientExecutor;
using resilience::RetryPolicy;

struct Fixture {
  ConvShape shape;
  std::vector<float> weights, input, ones, zeros;

  explicit Fixture(unsigned seed = 77) {
    shape = ConvShape::conv("t", 4, 6, 5, 3, 1, false);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(shape.weights()));
    for (auto& w : weights) w = wdist(rng);
    input.resize(static_cast<std::size_t>(shape.activations()));
    for (auto& a : input) a = adist(rng);
    ones.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    zeros.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }
};

HwConfig small_hw() {
  HwConfig hw = HwConfig::ulp();
  hw.accum = nn::AccumMode::kPbw;
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;
  return hw;
}

// Everything the acceptance contract calls "byte-identical" about one
// machine run, flattened to a comparable string.
std::string fingerprint(const MachineResult& r) {
  std::ostringstream os;
  for (const auto c : r.counters) os << c << ',';
  os << '|';
  for (const float a : r.activations) {
    // Bit pattern, not formatted value: the contract is bit-identity.
    std::uint32_t bits;
    static_assert(sizeof bits == sizeof a);
    std::memcpy(&bits, &a, sizeof bits);
    os << bits << ',';
  }
  os << '|' << r.stats.total_cycles << ':' << r.stats.compute_cycles << ':'
     << r.stats.stall_cycles << ':' << r.stats.nearmem_cycles << ':'
     << r.stats.ledger_ok;
  return os.str();
}

std::string fingerprint(const LayerOutcome& o) {
  std::ostringstream os;
  os << o.layer << '|' << static_cast<int>(o.rung) << '|' << o.degraded
     << '|' << o.tiles << '|' << o.tiles_retried << '|' << o.tiles_recovered
     << '|' << o.retries << '|' << o.backoff_cycles << '|'
     << o.abandoned_cycles << '|' << o.ledger_ok << '|';
  for (const auto d : o.detections) os << d << ',';
  return os.str();
}

TEST(Determinism, MachineConvIsByteIdenticalAcrossThreadCounts) {
  const Fixture f;
  const HwConfig hw = small_hw();
  ScopedFaultInjection off(nullptr);  // shield from ambient GEO_FAULTS
  std::vector<std::string> prints;
  for (const int threads : {1, 2, 8}) {
    exec::ScopedThreads scope(threads);
    GeoMachine machine(hw);
    auto r = machine.try_run_conv(f.shape, f.weights, f.input, f.ones,
                                  f.zeros, 9);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_TRUE(r->stats.ledger_ok) << "threads=" << threads;
    prints.push_back(fingerprint(*r));
  }
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
}

TEST(Determinism, DefectFaultRunIsByteIdenticalAcrossThreadCounts) {
  // The CI fault-recovery spec: uncorrectable double-bit SRAM bursts under
  // SECDED. The parallel resilience path must reproduce the serial loop's
  // detections, retries, backoff, and abandoned-cycle ledger exactly.
  const Fixture f;
  const HwConfig hw = small_hw();
  FaultConfig cfg;
  cfg.sram_error_rate = 2e-2;
  cfg.sram_burst = 2;
  cfg.ecc = EccMode::kSecded;
  cfg.rng_seed = 99;

  std::vector<std::string> run_prints, report_prints;
  for (const int threads : {1, 2, 8}) {
    exec::ScopedThreads scope(threads);
    ScopedFaultInjection inject(cfg);
    ResilientExecutor executor(hw, RetryPolicy{});
    auto r = executor.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros,
                               9, "det");
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    run_prints.push_back(fingerprint(*r));
    ASSERT_EQ(executor.report().layers.size(), 1u);
    report_prints.push_back(fingerprint(executor.report().layers[0]));
  }
  EXPECT_EQ(run_prints[0], run_prints[1]);
  EXPECT_EQ(run_prints[0], run_prints[2]);
  EXPECT_EQ(report_prints[0], report_prints[1]) << report_prints[0];
  EXPECT_EQ(report_prints[0], report_prints[2]) << report_prints[0];
}

TEST(Determinism, TransientFaultPassIsByteIdenticalAcrossThreadCounts) {
  // Transient draws are keyed by a per-site access sequence, so a single
  // full pass (one read per site) is order-independent — the machine may
  // fan tiles out even under the transient model.
  const Fixture f;
  const HwConfig hw = small_hw();
  FaultConfig cfg;
  cfg.sram_error_rate = 5e-3;
  cfg.stream_flip_rate = 1e-3;
  cfg.ecc = EccMode::kSecded;
  cfg.rng_seed = 31;
  cfg.transient = true;

  std::vector<std::string> prints;
  for (const int threads : {1, 2, 8}) {
    exec::ScopedThreads scope(threads);
    ScopedFaultInjection inject(cfg);
    GeoMachine machine(hw);
    auto r = machine.try_run_conv(f.shape, f.weights, f.input, f.ones,
                                  f.zeros, 9);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    prints.push_back(fingerprint(*r));
  }
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
}

TEST(Determinism, WorkerThreadsInheritSubmitterFaultScope) {
  // fault::active() is thread-local; the pool must propagate the
  // submitting thread's model onto its workers for the batch. A defect
  // model visible on the caller must therefore corrupt identically whether
  // tiles run inline or on workers — covered by the byte-identity tests —
  // and must be visible at all inside iterations, covered here.
  FaultConfig cfg;
  cfg.sram_error_rate = 1e-3;
  cfg.rng_seed = 5;
  ScopedFaultInjection inject(cfg);
  fault::FaultModel* expected = fault::active();
  ASSERT_NE(expected, nullptr);
  exec::ScopedThreads scope(4);
  std::atomic<int> mismatches{0};
  exec::parallel_for(64, 1, [&](std::int64_t) {
    if (fault::active() != expected) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Determinism, HistogramSurvivesConcurrentObservers) {
  telemetry::Histogram h;
  constexpr std::int64_t kN = 20000;
  exec::ScopedThreads scope(8);
  exec::parallel_for(kN, 64, [&](std::int64_t i) {
    h.observe(static_cast<double>(i % 1000) + 1.0);
  });
  EXPECT_EQ(h.count(), kN);
  // The min/max seeding race would lose one of these under contention.
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_GT(h.mean(), 0.0);
  EXPECT_GE(h.percentile(99.0), h.percentile(50.0));
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

}  // namespace
}  // namespace geo
