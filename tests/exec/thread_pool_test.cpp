// Work-stealing pool contract: every iteration runs exactly once at any
// pool size, exceptions cancel and rethrow on the caller, nested loops run
// inline, and ScopedThreads resizes/restores the process pool.
#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace geo::exec {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    ASSERT_EQ(pool.size(), threads);
    constexpr std::int64_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "threads=" << threads << " i=" << i;
  }
}

TEST(ThreadPool, DisjointWritesProduceIdenticalResults) {
  constexpr std::int64_t kN = 513;
  std::vector<std::int64_t> serial(kN), parallel(kN);
  ThreadPool one(1), many(4);
  one.parallel_for(kN, [&](std::int64_t i) {
    serial[static_cast<std::size_t>(i)] = i * i + 7;
  });
  many.parallel_for(kN, 8, [&](std::int64_t i) {
    parallel[static_cast<std::size_t>(i)] = i * i + 7;
  });
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadPool, ZeroAndSingleIterationRunInline) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::int64_t i) {
    ++calls;
    EXPECT_EQ(i, 0);
    EXPECT_TRUE(ThreadPool::in_parallel_region());
  });
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPool, ExceptionCancelsAndRethrowsOnCaller) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> ran{0};
  EXPECT_THROW(
      pool.parallel_for(256,
                        [&](std::int64_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                          ran.fetch_add(1);
                        }),
      std::runtime_error);
  EXPECT_LE(ran.load(), 255);
  // The pool survives a cancelled batch and keeps scheduling.
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(100, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_inline{0};
  pool.parallel_for(8, 1, [&](std::int64_t) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    // A nested loop must not re-enter the pool (deadlock risk): it runs on
    // the issuing thread, still inside the region.
    pool.parallel_for(4, [&](std::int64_t) {
      if (ThreadPool::in_parallel_region()) inner_inline.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_inline.load(), 32);
}

TEST(ThreadPool, ScopedThreadsResizesAndRestores) {
  const int before = ThreadPool::instance().size();
  {
    ScopedThreads two(2);
    EXPECT_EQ(ThreadPool::instance().size(), 2);
    {
      ScopedThreads eight(8);
      EXPECT_EQ(ThreadPool::instance().size(), 8);
    }
    EXPECT_EQ(ThreadPool::instance().size(), 2);
  }
  EXPECT_EQ(ThreadPool::instance().size(), before);
}

TEST(ThreadPool, DefaultThreadsHonorsEnvAndClamps) {
  ::setenv("GEO_THREADS", "3", 1);
  EXPECT_EQ(default_threads(), 3);
  ::setenv("GEO_THREADS", "0", 1);  // out of range: warn, fall back
  EXPECT_GE(default_threads(), 1);
  ::setenv("GEO_THREADS", "notanumber", 1);  // malformed: warn, fall back
  EXPECT_GE(default_threads(), 1);
  ::unsetenv("GEO_THREADS");
  EXPECT_GE(default_threads(), 1);
  EXPECT_LE(default_threads(), kMaxThreads);
}

TEST(ThreadPool, FreeFunctionUsesProcessPool) {
  ScopedThreads four(4);
  std::vector<std::int64_t> out(300);
  exec::parallel_for(300, [&](std::int64_t i) {
    out[static_cast<std::size_t>(i)] = i;
  });
  std::vector<std::int64_t> expect(300);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(out, expect);
}

}  // namespace
}  // namespace geo::exec
