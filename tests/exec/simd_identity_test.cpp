// The GEO_SIMD byte-identity contract (ctest -L simd): one workload must
// produce byte-identical conv outputs, activations, and cycle ledgers for
// every backend x thread-count x fault-injection combination, in every
// accumulator mode — SIMD is an execution optimization, never a semantic
// change. Also pins the fused generate+execute path (comparator-table rows
// fed straight into the MAC) against the materialized-stream path.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_model.hpp"
#include "sc/simd.hpp"

namespace geo {
namespace {

using arch::ConvShape;
using arch::GeoMachine;
using arch::HwConfig;
using arch::MachineResult;
using fault::EccMode;
using fault::FaultConfig;
using fault::ScopedFaultInjection;
using sc::simd::Backend;
using sc::simd::ScopedSimdBackend;

struct Fixture {
  ConvShape shape;
  std::vector<float> weights, input, ones, zeros;

  explicit Fixture(unsigned seed = 77) {
    shape = ConvShape::conv("t", 4, 6, 5, 3, 1, false);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(shape.weights()));
    for (auto& w : weights) w = wdist(rng);
    input.resize(static_cast<std::size_t>(shape.activations()));
    for (auto& a : input) a = adist(rng);
    ones.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    zeros.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }
};

// Multi-word streams (wpl = 4) so the vector body runs, not just the
// scalar tail.
HwConfig hw_for(nn::AccumMode accum) {
  HwConfig hw = HwConfig::ulp();
  hw.accum = accum;
  hw.stream_len = 256;
  hw.stream_len_pool = 256;
  hw.stream_len_output = 256;
  return hw;
}

FaultConfig fault_cfg() {
  FaultConfig cfg;
  cfg.sram_error_rate = 2e-2;
  cfg.sram_burst = 2;
  cfg.ecc = EccMode::kSecded;
  cfg.rng_seed = 99;
  return cfg;
}

std::string fingerprint(const MachineResult& r) {
  std::ostringstream os;
  for (const auto c : r.counters) os << c << ',';
  os << '|';
  for (const float a : r.activations) {
    std::uint32_t bits;
    static_assert(sizeof bits == sizeof a);
    std::memcpy(&bits, &a, sizeof bits);
    os << bits << ',';
  }
  os << '|' << r.stats.total_cycles << ':' << r.stats.compute_cycles << ':'
     << r.stats.stall_cycles << ':' << r.stats.retry_stall_cycles << ':'
     << r.stats.nearmem_cycles << ':' << r.stats.passes << ':'
     << r.stats.psum_ops << ':' << r.stats.ledger_ok;
  return os.str();
}

// Scoped setenv/restore so knob tests cannot leak into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_ = false;
};

constexpr nn::AccumMode kModes[] = {nn::AccumMode::kFxp, nn::AccumMode::kApc,
                                    nn::AccumMode::kOr, nn::AccumMode::kPbw,
                                    nn::AccumMode::kPbhw};

class SimdIdentity : public ::testing::TestWithParam<nn::AccumMode> {};

// The full matrix for one accumulator mode:
//   GEO_SIMD {scalar, best} x GEO_THREADS {1, 8} x GEO_FAULTS {off, on}.
// All cells of a fault setting must match byte for byte (fault injection
// changes the bits by design, so on/off are compared within themselves).
TEST_P(SimdIdentity, ConvIsByteIdenticalAcrossBackendsAndThreads) {
  const Fixture f;
  const HwConfig hw = hw_for(GetParam());
  const std::vector<Backend> backends =
      sc::simd::detect_best() == Backend::kScalar
          ? std::vector<Backend>{Backend::kScalar}
          : std::vector<Backend>{Backend::kScalar, sc::simd::detect_best()};
  for (const bool faults : {false, true}) {
    std::vector<std::string> prints;
    for (const Backend b : backends) {
      for (const int threads : {1, 8}) {
        ScopedSimdBackend simd_scope(b);
        exec::ScopedThreads thread_scope(threads);
        std::optional<ScopedFaultInjection> inject;
        if (faults)
          inject.emplace(fault_cfg());
        else
          inject.emplace(nullptr);  // shield from ambient GEO_FAULTS
        GeoMachine machine(hw);
        auto r = machine.try_run_conv(f.shape, f.weights, f.input, f.ones,
                                      f.zeros, 9);
        ASSERT_TRUE(r.ok()) << r.status().to_string();
        EXPECT_TRUE(r->stats.ledger_ok)
            << sc::simd::to_string(b) << " threads=" << threads;
        prints.push_back(fingerprint(*r));
      }
    }
    for (std::size_t i = 1; i < prints.size(); ++i)
      EXPECT_EQ(prints[0], prints[i])
          << "faults=" << faults << " cell " << i << " diverged";
  }
}

// Fused generate+execute (table rows fed straight into the MAC reduction,
// GEO_STREAM_TABLE=1, no fault model) must be byte-identical to the
// materialized bit-serial path (GEO_STREAM_TABLE=0) — same outputs, same
// ledger. Covers both the direct (kFxp) and grouped (kPbw) accumulators.
TEST_P(SimdIdentity, FusedTableRowsMatchMaterializedStreams) {
  const Fixture f;
  const HwConfig hw = hw_for(GetParam());
  ScopedFaultInjection off(nullptr);
  std::vector<std::string> prints;
  for (const char* table : {"1", "0"}) {
    ScopedEnv env("GEO_STREAM_TABLE", table);
    GeoMachine machine(hw);
    auto r = machine.try_run_conv(f.shape, f.weights, f.input, f.ones,
                                  f.zeros, 9);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    prints.push_back(fingerprint(*r));
  }
  EXPECT_EQ(prints[0], prints[1]);
}

INSTANTIATE_TEST_SUITE_P(Accum, SimdIdentity, ::testing::ValuesIn(kModes),
                         [](const auto& info) {
                           switch (info.param) {
                             case nn::AccumMode::kFxp: return "Fxp";
                             case nn::AccumMode::kApc: return "Apc";
                             case nn::AccumMode::kOr: return "Or";
                             case nn::AccumMode::kPbw: return "Pbw";
                             case nn::AccumMode::kPbhw: return "Pbhw";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace geo
