#include <gtest/gtest.h>

#include "baselines/acoustic.hpp"
#include "baselines/eyeriss.hpp"
#include "baselines/reported.hpp"

namespace geo::baselines {
namespace {

using arch::NetworkShape;

TEST(Eyeriss, Ulp4BitDesignPoint) {
  const EyerissModel m(EyerissConfig::ulp_4bit());
  // Paper: 0.59 mm2, 80 GOPS peak.
  EXPECT_NEAR(m.area_mm2(), 0.59, 0.59 * 0.3);
  EXPECT_NEAR(m.peak_gops(), 80.0, 0.5);
}

TEST(Eyeriss, Lp8BitDesignPoint) {
  const EyerissModel m(EyerissConfig::lp_8bit());
  // Paper: 9.3 mm2, 204 GOPS peak.
  EXPECT_NEAR(m.area_mm2(), 9.3, 9.3 * 0.35);
  EXPECT_NEAR(m.peak_gops(), 204.8, 1.0);
}

TEST(Eyeriss, CnnFrameRateBallpark) {
  // Paper: 5.2k frames/s on CNN-4/CIFAR at 4 bits.
  const EyerissModel m(EyerissConfig::ulp_4bit());
  const EyerissResult r = m.run(NetworkShape::cnn4_cifar());
  EXPECT_GT(r.frames_per_second, 2e3);
  EXPECT_LT(r.frames_per_second, 12e3);
}

TEST(Eyeriss, PowerBallpark) {
  // Paper: ~20 mW at the 4-bit ULP-class point.
  const EyerissModel m(EyerissConfig::ulp_4bit());
  const EyerissResult r = m.run(NetworkShape::cnn4_cifar());
  EXPECT_GT(r.average_power_w, 0.005);
  EXPECT_LT(r.average_power_w, 0.080);
}

TEST(Eyeriss, EightBitCostsMoreThanFourBit) {
  EyerissConfig c8 = EyerissConfig::ulp_4bit();
  c8.bits = 8;
  const EyerissModel m4(EyerissConfig::ulp_4bit()), m8(c8);
  EXPECT_GT(m8.mac_energy_j(), m4.mac_energy_j());
  EXPECT_GT(m8.area_mm2(), m4.area_mm2());
}

TEST(Eyeriss, FcUnderutilizes) {
  const EyerissModel m(EyerissConfig::ulp_4bit());
  const auto conv = arch::ConvShape::conv("c", 32, 16, 32, 5, 2, false);
  const auto fc = arch::ConvShape::fc("fc", 512, 10, true);
  EXPECT_GT(m.utilization(conv), m.utilization(fc));
}

TEST(Eyeriss, ExternalMemoryAddsTimeAndEnergy) {
  EyerissConfig no_ext = EyerissConfig::lp_8bit();
  no_ext.external_memory = false;
  const EyerissResult with_ext =
      EyerissModel(EyerissConfig::lp_8bit()).run(NetworkShape::vgg16());
  const EyerissResult without =
      EyerissModel(no_ext).run(NetworkShape::vgg16());
  EXPECT_GE(with_ext.seconds, without.seconds);
  EXPECT_GT(with_ext.energy_per_frame_j, without.energy_per_frame_j);
}

TEST(Acoustic, UlpSizedLikeGeo) {
  const AcousticModel m = AcousticModel::ulp(128);
  // Paper: ACOUSTIC ULP at 0.57 mm2 (GEO is 0.58).
  EXPECT_NEAR(m.area_mm2(), 0.57, 0.57 * 0.3);
}

TEST(Acoustic, SlowerThanGeoAtIsoAccuracyStreams) {
  // ACOUSTIC needs 128-bit streams where GEO-32,64 holds accuracy: the
  // paper's 4.4x throughput claim comes from this gap plus dataflow.
  const auto geo = arch::PerfSim(arch::HwConfig::ulp())
                       .simulate(NetworkShape::cnn4_cifar());
  const auto aco = AcousticModel::ulp(128).run(NetworkShape::cnn4_cifar());
  const double speedup = geo.frames_per_second / aco.frames_per_second;
  EXPECT_GT(speedup, 2.5);
  EXPECT_LT(speedup, 8.0);
}

TEST(Acoustic, MoreEnergyPerFrameThanGeo) {
  const auto geo = arch::PerfSim(arch::HwConfig::ulp())
                       .simulate(NetworkShape::cnn4_cifar());
  const auto aco = AcousticModel::ulp(128).run(NetworkShape::cnn4_cifar());
  EXPECT_GT(aco.energy_per_frame_j / geo.energy_per_frame_j, 2.0)
      << "paper: GEO is up to 5.3x more energy efficient";
}

TEST(Acoustic, NnConfigIsAllOrUnshared) {
  const auto cfg = AcousticModel::ulp(128).nn_config();
  EXPECT_EQ(cfg.accum, nn::AccumMode::kOr);
  EXPECT_EQ(cfg.sharing, sc::Sharing::kNone);
  EXPECT_EQ(cfg.stream_len, 128);
}

TEST(Reported, ConstantsMatchPaperTables) {
  EXPECT_DOUBLE_EQ(reported::kConvRam.area_mm2, 0.02);
  EXPECT_DOUBLE_EQ(reported::kMdlCnn.peak_tops_per_watt, 18.2);
  EXPECT_DOUBLE_EQ(reported::kScope.area_mm2, 273.0);
  EXPECT_DOUBLE_EQ(reported::kSmSc.clock_mhz, 1536.0);
  EXPECT_DOUBLE_EQ(reported::kScopeLenetAccuracy, 0.993);
}

}  // namespace
}  // namespace geo::baselines
