// Streamgen suite: the table-driven generation engine must be bit-identical
// to the tick path for every value, seed, polynomial, length, and schedule —
// and the shared-sequence cache must key on the spec the faults actually
// rewrote. Runs as its own binary (`ctest -L streamgen`) so registry clears
// and env-knob churn never interleave with the tier-1 tests.
#include "sc/stream_table.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "arch/machine.hpp"
#include "fault/fault_model.hpp"
#include "nn/sc_layers.hpp"
#include "sc/lfsr.hpp"
#include "sc/sobol.hpp"
#include "telemetry/telemetry.hpp"

namespace geo::sc {
namespace {

using Words = std::vector<std::uint64_t>;

std::size_t words_per_line(std::size_t length) { return (length + 63) / 64; }

// Packs a Bitstream into the engine's word layout (bit i -> word i/64,
// bit i%64) so reference and engine output compare word-for-word.
Words pack(const Bitstream& s) {
  Words w(words_per_line(s.length()), 0);
  for (std::size_t i = 0; i < s.length(); ++i)
    if (s.get(i)) w[i >> 6] |= std::uint64_t{1} << (i & 63);
  return w;
}

Words engine_plain(RngKind kind, const SeedSpec& spec, std::uint32_t vn,
                   std::size_t length, bool use_table) {
  Words w(words_per_line(length), 0);
  StreamGenerator::local().generate(w.data(), w.size(), length, kind, spec,
                                    vn, use_table);
  return w;
}

Words engine_progressive(RngKind kind, const SeedSpec& spec,
                         const ProgressiveSchedule& sched, std::uint32_t value,
                         std::size_t length, bool use_table) {
  Words w(words_per_line(length), 0);
  StreamGenerator::local().generate_progressive(w.data(), w.size(), length,
                                                kind, spec, sched, value,
                                                use_table);
  return w;
}

Words reference_plain(RngKind kind, const SeedSpec& spec, std::uint32_t vn,
                      std::size_t length) {
  Sng sng(kind, spec);
  return pack(sng.generate(vn, length));
}

Words reference_progressive(RngKind kind, const SeedSpec& spec,
                            const ProgressiveSchedule& sched,
                            std::uint32_t value, std::size_t length) {
  ProgressiveSng sng(kind, spec, sched);
  return pack(sng.generate(value, length));
}

// Scoped setenv/restore so knob tests cannot leak into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_ = false;
};

// --- exhaustive table-vs-tick equivalence ---------------------------------

TEST(StreamTableExhaustive, PlainMatchesTickForAllValuesSeedsTapsLengths) {
  const std::uint32_t seeds[] = {1, 7, 42, 901};
  const std::size_t lengths[] = {32, 128, 256};
  for (unsigned bits : {5u, 7u, 8u}) {
    const auto taps = Lfsr::find_maximal_taps(bits, 2);
    ASSERT_GE(taps.size(), 2u) << "need two polynomials at " << bits;
    for (std::uint32_t tap_mask : {std::uint32_t{0}, taps[1]}) {
      for (std::uint32_t seed : seeds) {
        const SeedSpec spec{bits, seed, tap_mask};
        for (std::size_t length : lengths) {
          const std::uint32_t top = std::uint32_t{1} << bits;
          for (std::uint32_t v = 0; v < top; ++v) {
            const Words ref = reference_plain(RngKind::kLfsr, spec, v, length);
            EXPECT_EQ(engine_plain(RngKind::kLfsr, spec, v, length, true), ref)
                << "table path: bits=" << bits << " taps=" << tap_mask
                << " seed=" << seed << " L=" << length << " v=" << v;
            EXPECT_EQ(engine_plain(RngKind::kLfsr, spec, v, length, false),
                      ref)
                << "tick path: bits=" << bits << " taps=" << tap_mask
                << " seed=" << seed << " L=" << length << " v=" << v;
          }
        }
      }
    }
  }
}

TEST(StreamTableExhaustive, ProgressiveMatchesTickForAllValues) {
  const std::uint32_t seeds[] = {1, 7, 42, 901};
  const auto taps8 = Lfsr::find_maximal_taps(8, 2);
  ASSERT_GE(taps8.size(), 2u);
  const ProgressiveSchedule sched{};  // the paper's 8/8/2/2 schedule
  for (std::uint32_t tap_mask : {std::uint32_t{0}, taps8[1]}) {
    for (std::uint32_t seed : seeds) {
      const SeedSpec spec{8, seed, tap_mask};
      for (std::size_t length : {std::size_t{32}, std::size_t{128},
                                 std::size_t{256}}) {
        for (std::uint32_t v = 0; v < 256; ++v) {
          const Words ref =
              reference_progressive(RngKind::kLfsr, spec, sched, v, length);
          EXPECT_EQ(
              engine_progressive(RngKind::kLfsr, spec, sched, v, length, true),
              ref)
              << "table: taps=" << tap_mask << " seed=" << seed
              << " L=" << length << " v=" << v;
          EXPECT_EQ(engine_progressive(RngKind::kLfsr, spec, sched, v, length,
                                       false),
                    ref)
              << "tick: taps=" << tap_mask << " seed=" << seed
              << " L=" << length << " v=" << v;
        }
      }
    }
  }
}

// Schedules where value_bits != lfsr_bits, odd beat geometry, and a beat
// period that does not divide the stream length.
TEST(StreamTableExhaustive, ProgressiveOddSchedules) {
  struct Case {
    ProgressiveSchedule sched;
    unsigned lfsr_bits;
    std::size_t length;
  };
  const Case cases[] = {
      {{8, 5, 3, 1}, 5, 32},    // truncating: 8-bit value, 5-bit LFSR
      {{6, 6, 1, 3}, 6, 100},   // 1-bit beats, period 3, L not a multiple
      {{4, 8, 2, 2}, 8, 256},   // widening: value narrower than the LFSR
      {{8, 8, 8, 4}, 8, 37},    // whole value in one beat, odd length
  };
  for (const Case& c : cases) {
    const SeedSpec spec{c.lfsr_bits, 19, 0};
    const std::uint32_t top = std::uint32_t{1} << c.sched.value_bits;
    for (std::uint32_t v = 0; v < top; ++v) {
      const Words ref =
          reference_progressive(RngKind::kLfsr, spec, c.sched, v, c.length);
      EXPECT_EQ(engine_progressive(RngKind::kLfsr, spec, c.sched, v, c.length,
                                   true),
                ref)
          << "vb=" << c.sched.value_bits << " lb=" << c.sched.lfsr_bits
          << " gb=" << c.sched.group_bits << " bc=" << c.sched.beat_cycles
          << " v=" << v;
    }
  }
}

TEST(StreamTable, CounterAndSobolMatchTick) {
  for (RngKind kind : {RngKind::kCounter, RngKind::kSobol}) {
    for (std::uint32_t seed : {0u, 3u, 13u}) {
      const SeedSpec spec{6, seed, 0};
      for (std::size_t length : {std::size_t{64}, std::size_t{100}}) {
        for (std::uint32_t v = 0; v < 64; ++v) {
          const Words ref = reference_plain(kind, spec, v, length);
          EXPECT_EQ(engine_plain(kind, spec, v, length, true), ref)
              << to_string(kind) << " seed=" << seed << " L=" << length
              << " v=" << v;
        }
      }
    }
  }
}

// Lengths that straddle word boundaries and the LFSR period (255 for 8-bit):
// the table's prefix-OR must track the wrapped sequence exactly.
TEST(StreamTable, OddLengthsAndPeriodWrap) {
  const SeedSpec spec{8, 77, 0};
  for (std::size_t length : {std::size_t{1}, std::size_t{63}, std::size_t{65},
                             std::size_t{100}, std::size_t{300}}) {
    for (std::uint32_t v : {0u, 1u, 128u, 254u, 255u}) {
      EXPECT_EQ(engine_plain(RngKind::kLfsr, spec, v, length, true),
                reference_plain(RngKind::kLfsr, spec, v, length))
          << "L=" << length << " v=" << v;
    }
  }
}

TEST(StreamTable, ZeroValueNeverFires) {
  for (RngKind kind : {RngKind::kLfsr, RngKind::kCounter, RngKind::kSobol}) {
    const SeedSpec spec{8, 5, 0};
    const Words w = engine_plain(kind, spec, 0, 256, true);
    for (std::uint64_t word : w) EXPECT_EQ(word, 0u) << to_string(kind);
  }
}

// Values at or above 2^bits saturate exactly like Sng::load does.
TEST(StreamTable, OverRangeValueSaturates) {
  const SeedSpec spec{6, 9, 0};
  EXPECT_EQ(engine_plain(RngKind::kLfsr, spec, 1000, 128, true),
            reference_plain(RngKind::kLfsr, spec, 63, 128));
}

// --- reusable tick path (satellite: no per-stream allocation) -------------

TEST(StreamGeneratorReuse, ReseedMatchesFreshConstruction) {
  const SeedSpec a{8, 11, 0};
  const SeedSpec b{8, 200, Lfsr::find_maximal_taps(8, 2)[1]};
  for (RngKind kind : {RngKind::kLfsr, RngKind::kCounter, RngKind::kSobol,
                       RngKind::kTrng}) {
    Sng reused(kind, a);
    (void)reused.generate(40, 256);  // dirty the state
    reused.reseed(b);
    Sng fresh(kind, b);
    EXPECT_EQ(pack(reused.generate(40, 256)), pack(fresh.generate(40, 256)))
        << to_string(kind);
  }
}

TEST(StreamGeneratorReuse, ProgressiveReseedMatchesFreshConstruction) {
  const ProgressiveSchedule sched{};
  const SeedSpec a{8, 11, 0};
  const SeedSpec b{8, 200, 0};
  ProgressiveSng reused(RngKind::kLfsr, a, sched);
  (void)reused.generate(40, 256);
  reused.reseed(b);
  ProgressiveSng fresh(RngKind::kLfsr, b, sched);
  EXPECT_EQ(pack(reused.generate(40, 256)), pack(fresh.generate(40, 256)));
}

// The engine's TRNG path must be bit-identical to the per-stream
// fresh-construction it replaced: a fresh TrngSource always starts at epoch
// 1, and reseed() restores exactly that state.
TEST(StreamGeneratorReuse, TrngFallsBackBitIdentical) {
  const SeedSpec spec{8, 321, 0};
  for (std::uint32_t v : {1u, 100u, 255u}) {
    EXPECT_EQ(engine_plain(RngKind::kTrng, spec, v, 256, true),
              reference_plain(RngKind::kTrng, spec, v, 256));
  }
}

// --- registry behaviour ----------------------------------------------------

TEST(StreamTableRegistry, CanonicalKeyCollapsesEquivalentSpecs) {
  auto& reg = StreamTableRegistry::instance();
  reg.clear();

  // taps = 0 and the explicit default polynomial are the same sequence.
  const auto* a = reg.acquire(RngKind::kLfsr, {8, 5, 0}, 256);
  const auto* b =
      reg.acquire(RngKind::kLfsr, {8, 5, Lfsr::default_taps(8)}, 256);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);

  // Seed 0 silently remaps to 1 inside the LFSR.
  EXPECT_EQ(reg.acquire(RngKind::kLfsr, {8, 0, 0}, 256),
            reg.acquire(RngKind::kLfsr, {8, 1, 0}, 256));

  // Sobol dimensions wrap modulo kDimensions.
  EXPECT_EQ(reg.acquire(RngKind::kSobol, {8, 3, 0}, 128),
            reg.acquire(RngKind::kSobol, {8, 3 + SobolSource::kDimensions, 0},
                        128));

  // Different lengths are different tables.
  EXPECT_NE(reg.acquire(RngKind::kLfsr, {8, 5, 0}, 128), a);
}

TEST(StreamTableRegistry, TrngAndOversizeTablesFallBack) {
  auto& reg = StreamTableRegistry::instance();
  reg.clear();
  const std::uint64_t fallbacks = reg.fallbacks();

  EXPECT_EQ(reg.acquire(RngKind::kTrng, {8, 5, 0}, 256), nullptr);
  // 24-bit table at L=256: 2^24 rows * 4 words * 8 bytes = 512 MiB, far over
  // the per-table cap — must refuse without allocating.
  EXPECT_EQ(reg.acquire(RngKind::kLfsr, {24, 5, 0}, 256), nullptr);
  EXPECT_GE(reg.fallbacks(), fallbacks + 2);
  // The refused build leaves only a zero-byte negative-cache placeholder:
  // repeat acquires fall back immediately without re-attempting the build.
  EXPECT_EQ(reg.total_bytes(), 0u);
  EXPECT_EQ(reg.acquire(RngKind::kLfsr, {24, 5, 0}, 256), nullptr);

  // The generating engine still produces correct bits through the tick path.
  const SeedSpec wide{24, 5, 0};
  EXPECT_EQ(engine_plain(RngKind::kLfsr, wide, 12345, 128, true),
            reference_plain(RngKind::kLfsr, wide, 12345, 128));
}

TEST(StreamTableRegistry, StatsCountHitsAndMisses) {
  auto& reg = StreamTableRegistry::instance();
  reg.clear();
  const std::uint64_t hits = reg.hits();
  const std::uint64_t misses = reg.misses();

  const SeedSpec spec{8, 4242, 0};
  ASSERT_NE(reg.acquire(RngKind::kLfsr, spec, 256), nullptr);
  EXPECT_EQ(reg.misses(), misses + 1);
  ASSERT_NE(reg.acquire(RngKind::kLfsr, spec, 256), nullptr);
  EXPECT_EQ(reg.hits(), hits + 1);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.total_bytes(), StreamTable::bytes_for(8, 256));

  // Telemetry mirrors the registry counters.
  auto& metrics = telemetry::MetricsRegistry::instance();
  EXPECT_GE(metrics.counter("machine.stream_table_misses").value(), 1);
  EXPECT_GE(metrics.counter("machine.stream_table_build_ns").value(), 0);
}

// Many threads race one cold key: exactly one build may happen, every
// waiter must observe the fully published table, and every generated stream
// must equal the tick reference.
TEST(StreamTableRegistry, ConcurrentAcquireBuildsOnceAndServesAll) {
  auto& reg = StreamTableRegistry::instance();
  reg.clear();
  const std::uint64_t misses = reg.misses();

  const SeedSpec spec{8, 3141, 0};
  const std::size_t length = 256;
  std::vector<Words> refs(256);
  for (std::uint32_t v = 0; v < 256; ++v)
    refs[v] = reference_plain(RngKind::kLfsr, spec, v, length);

  constexpr int kThreads = 8;
  constexpr int kIters = 64;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(t) * 7919u + 1);
      for (int i = 0; i < kIters; ++i) {
        const std::uint32_t v = rng() & 255u;
        Words w(words_per_line(length), 0);
        StreamGenerator::local().generate(w.data(), w.size(), length,
                                          RngKind::kLfsr, spec, v, true);
        if (w != refs[v]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : pool) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.misses(), misses + 1);  // exactly one build
}

// --- fault interaction -----------------------------------------------------

// The cache is keyed AFTER fault::corrupt_seed rewrites a spec, so a
// seed-upset stream comes from the corrupted sequence's own table — never
// from the healthy one.
TEST(StreamTableFaults, CacheKeysTrackCorruptedSeeds) {
  fault::FaultConfig cfg;
  cfg.seed_upset_rate = 1.0;
  cfg.rng_seed = 99;
  fault::FaultModel fm(cfg);

  auto& reg = StreamTableRegistry::instance();
  reg.clear();

  const SeedSpec healthy{8, 21, 0};
  int upsets = 0;
  for (std::uint64_t site = 0; site < 8; ++site) {
    const SeedSpec hit = fm.corrupt_seed(healthy, site);
    if (!(hit == healthy)) ++upsets;
    for (std::uint32_t v : {1u, 77u, 200u}) {
      const Words ref = reference_plain(RngKind::kLfsr, hit, v, 256);
      EXPECT_EQ(engine_plain(RngKind::kLfsr, hit, v, 256, true), ref)
          << "site=" << site << " v=" << v;
      // And the healthy table must still serve the healthy sequence.
      EXPECT_EQ(engine_plain(RngKind::kLfsr, healthy, v, 256, true),
                reference_plain(RngKind::kLfsr, healthy, v, 256));
    }
  }
  EXPECT_GT(upsets, 0) << "rate-1.0 model never upset a seed";
  // One table per distinct corrupted sequence, plus the healthy one.
  EXPECT_GE(reg.size(), 2u);
}

// A machine run under a seed-upset fault scope must produce the same bytes
// with the cache on and off (the GEO_FAULTS bit-exactness contract).
TEST(StreamTableFaults, MachineFaultRunByteIdenticalAcrossKnob) {
  auto cfg = fault::FaultConfig::parse("seed=0.5,rng=7").value();

  arch::ConvShape shape =
      arch::ConvShape::conv("f", 3, 5, 4, 3, /*pad=*/1, /*pool=*/false);
  std::mt19937 rng(11);
  std::uniform_real_distribution<float> wd(-0.8f, 0.8f);
  std::uniform_real_distribution<float> ad(0.0f, 1.0f);
  std::vector<float> weights(static_cast<std::size_t>(shape.weights()));
  for (auto& w : weights) w = wd(rng);
  std::vector<float> input(static_cast<std::size_t>(shape.activations()));
  for (auto& a : input) a = ad(rng);
  const std::vector<float> ones(4, 1.0f), zeros(4, 0.0f);

  auto run = [&](const char* knob) {
    ScopedEnv env("GEO_STREAM_TABLE", knob);
    fault::ScopedFaultInjection scope(cfg);
    arch::GeoMachine machine(arch::HwConfig::ulp());
    return machine.run_conv(shape, weights, input, ones, zeros, 5);
  };
  const arch::MachineResult on = run("1");
  const arch::MachineResult off = run("0");
  EXPECT_EQ(on.counters, off.counters);
  EXPECT_EQ(on.activations, off.activations);
}

// --- end-to-end byte identity across the knob ------------------------------

class StreamTableKnobIdentity : public ::testing::TestWithParam<bool> {};

TEST_P(StreamTableKnobIdentity, MachineRunByteIdentical) {
  const bool progressive = GetParam();
  arch::HwConfig hw = arch::HwConfig::ulp();
  hw.progressive = progressive;

  arch::ConvShape shape =
      arch::ConvShape::conv("k", 4, 6, 5, 3, /*pad=*/1, /*pool=*/false);
  std::mt19937 rng(23);
  std::uniform_real_distribution<float> wd(-0.8f, 0.8f);
  std::uniform_real_distribution<float> ad(0.0f, 1.0f);
  std::vector<float> weights(static_cast<std::size_t>(shape.weights()));
  for (auto& w : weights) w = wd(rng);
  std::vector<float> input(static_cast<std::size_t>(shape.activations()));
  for (auto& a : input) a = ad(rng);
  const std::vector<float> ones(5, 1.0f), zeros(5, 0.0f);

  auto run = [&](const char* knob) {
    ScopedEnv env("GEO_STREAM_TABLE", knob);
    arch::GeoMachine machine(hw);
    return machine.run_conv(shape, weights, input, ones, zeros, 9);
  };
  const arch::MachineResult on = run("1");
  const arch::MachineResult off = run("0");
  EXPECT_EQ(on.counters, off.counters);
  EXPECT_EQ(on.activations, off.activations);
}

INSTANTIATE_TEST_SUITE_P(Progressive, StreamTableKnobIdentity,
                         ::testing::Bool());

TEST(StreamTableKnob, ScLayerForwardByteIdentical) {
  for (bool progressive : {false, true}) {
    nn::ScLayerConfig cfg;
    cfg.progressive = progressive;
    auto forward = [&](const char* knob) {
      ScopedEnv env("GEO_STREAM_TABLE", knob);
      std::mt19937 init(17);
      nn::ScConv2d layer(3, 4, 3, 1, 1, init, cfg);
      nn::Tensor x({1, 3, 6, 6});
      std::mt19937 xr(5);
      std::uniform_real_distribution<float> ad(0.0f, 1.0f);
      for (auto& v : x.data()) v = ad(xr);
      return layer.forward(x, false);
    };
    const nn::Tensor on = forward("1");
    const nn::Tensor off = forward("0");
    ASSERT_EQ(on.size(), off.size());
    for (std::size_t i = 0; i < on.size(); ++i)
      EXPECT_EQ(on[i], off[i]) << "progressive=" << progressive << " output "
                               << i;
  }
}

// --- knob parsing ----------------------------------------------------------

TEST(StreamTableKnob, EnvTogglesAndToleratesGarbage) {
  {
    ScopedEnv env("GEO_STREAM_TABLE", "0");
    EXPECT_FALSE(stream_table_enabled());
  }
  {
    ScopedEnv env("GEO_STREAM_TABLE", "1");
    EXPECT_TRUE(stream_table_enabled());
  }
  {
    ScopedEnv env("GEO_STREAM_TABLE", nullptr);
    EXPECT_TRUE(stream_table_enabled());  // default on
  }
  {
    ScopedEnv env("GEO_STREAM_TABLE", "banana");
    EXPECT_TRUE(stream_table_enabled());  // malformed -> default, no abort
  }
}

TEST(StreamTableKnob, DisabledEngineBypassesRegistry) {
  auto& reg = StreamTableRegistry::instance();
  reg.clear();
  const SeedSpec spec{8, 60000, 0};
  const Words ref = reference_plain(RngKind::kLfsr, spec, 9, 256);
  EXPECT_EQ(engine_plain(RngKind::kLfsr, spec, 9, 256, /*use_table=*/false),
            ref);
  EXPECT_EQ(reg.size(), 0u);  // never consulted
}

}  // namespace
}  // namespace geo::sc
