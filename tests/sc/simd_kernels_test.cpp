// Backend parity for the sc::simd kernels (ctest -L simd).
//
// The bit-exactness contract: every backend (scalar / AVX2 / NEON) returns
// identical results for identical inputs. These tests pin that on
// adversarial word counts — empty, single-word, one short of the vector
// width, the width itself, one past it, one past the deferred-accumulate
// block boundary — against an independent reference computed with plain
// std::popcount loops.
#include "sc/simd.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

namespace geo::sc::simd {
namespace {

// One short of / exactly / one past the AVX2 width (4 words) and the
// deferred-SAD block (31 * 4 words), plus an odd large size.
constexpr std::size_t kSizes[] = {0,  1,  2,   3,   4,   5,   7,  8,
                                  31, 32, 33,  63,  64,  123, 124, 125,
                                  128, 257, 1000};

std::vector<std::uint64_t> random_words(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> w(n);
  for (auto& x : w) x = rng();
  return w;
}

// The backends worth testing on this machine: scalar always, plus whatever
// detect_best() resolves to (requesting an unsupported backend through
// ScopedSimdBackend falls back to scalar, so the list never lies).
std::vector<Backend> backends_under_test() {
  std::vector<Backend> b{Backend::kScalar};
  if (detect_best() != Backend::kScalar) b.push_back(detect_best());
  return b;
}

TEST(SimdKernels, ReductionParityAcrossBackends) {
  for (const std::size_t n : kSizes) {
    const auto a = random_words(n, 0x9e3779b97f4a7c15ull + n);
    const auto p = random_words(n, 0xbf58476d1ce4e5b9ull + n);
    const auto q = random_words(n, 0x94d049bb133111ebull + n);

    // Independent scalar reference.
    std::uint64_t ref_pop = 0, ref_and = 0, ref_or = 0;
    std::int64_t ref_mac = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ref_pop += static_cast<std::uint64_t>(std::popcount(a[i]));
      ref_and += static_cast<std::uint64_t>(std::popcount(a[i] & p[i]));
      ref_or += static_cast<std::uint64_t>(std::popcount(a[i] | p[i]));
      ref_mac += std::popcount(a[i] & p[i]);
      ref_mac -= std::popcount(a[i] & q[i]);
    }

    for (const Backend b : backends_under_test()) {
      ScopedSimdBackend scope(b);
      ASSERT_EQ(active(), b);
      EXPECT_EQ(popcount_words(a.data(), n), ref_pop)
          << to_string(b) << " n=" << n;
      EXPECT_EQ(and_popcount(a.data(), p.data(), n), ref_and)
          << to_string(b) << " n=" << n;
      EXPECT_EQ(or_popcount(a.data(), p.data(), n), ref_or)
          << to_string(b) << " n=" << n;
      EXPECT_EQ(mac_popcount(a.data(), p.data(), q.data(), n), ref_mac)
          << to_string(b) << " n=" << n;
    }
  }
}

TEST(SimdKernels, BlockOpParityAcrossBackends) {
  for (const std::size_t n : kSizes) {
    const auto base = random_words(n, 17 + n);
    const auto src = random_words(n, 31 + n);
    const auto aux = random_words(n, 47 + n);

    std::vector<std::uint64_t> ref_and(n), ref_or(n), ref_xor(n),
        ref_or_and(n);
    for (std::size_t i = 0; i < n; ++i) {
      ref_and[i] = base[i] & src[i];
      ref_or[i] = base[i] | src[i];
      ref_xor[i] = base[i] ^ src[i];
      ref_or_and[i] = base[i] | (src[i] & aux[i]);
    }

    for (const Backend b : backends_under_test()) {
      ScopedSimdBackend scope(b);
      auto d1 = base, d2 = base, d3 = base, d4 = base;
      and_into(d1.data(), src.data(), n);
      or_into(d2.data(), src.data(), n);
      xor_into(d3.data(), src.data(), n);
      or_and_into(d4.data(), src.data(), aux.data(), n);
      EXPECT_EQ(d1, ref_and) << to_string(b) << " n=" << n;
      EXPECT_EQ(d2, ref_or) << to_string(b) << " n=" << n;
      EXPECT_EQ(d3, ref_xor) << to_string(b) << " n=" << n;
      EXPECT_EQ(d4, ref_or_and) << to_string(b) << " n=" << n;
    }
  }
}

TEST(SimdKernels, MacEqualsSplitAndPopcounts) {
  // The fused signed MAC must equal its two-call decomposition on every
  // backend (one pass over `a` is an optimization, not a semantic change).
  for (const std::size_t n : {std::size_t{5}, std::size_t{64},
                              std::size_t{125}}) {
    const auto a = random_words(n, 1000 + n);
    const auto wp = random_words(n, 2000 + n);
    const auto wn = random_words(n, 3000 + n);
    for (const Backend b : backends_under_test()) {
      ScopedSimdBackend scope(b);
      const std::int64_t split =
          static_cast<std::int64_t>(and_popcount(a.data(), wp.data(), n)) -
          static_cast<std::int64_t>(and_popcount(a.data(), wn.data(), n));
      EXPECT_EQ(mac_popcount(a.data(), wp.data(), wn.data(), n), split)
          << to_string(b) << " n=" << n;
    }
  }
}

TEST(SimdBackend, DetectBestIsExecutable) {
  // Whatever auto resolves to must actually run (a crash here would mean
  // the CPUID gate and the kernel ISA disagree).
  const Backend best = detect_best();
  ScopedSimdBackend scope(best);
  EXPECT_EQ(active(), best);
  const auto w = random_words(64, 7);
  std::uint64_t ref = 0;
  for (const auto x : w) ref += static_cast<std::uint64_t>(std::popcount(x));
  EXPECT_EQ(popcount_words(w.data(), w.size()), ref);
}

TEST(SimdBackend, ScopedOverrideRestoresPrevious) {
  const Backend before = active();
  {
    ScopedSimdBackend scope(Backend::kScalar);
    EXPECT_EQ(active(), Backend::kScalar);
  }
  EXPECT_EQ(active(), before);
}

TEST(SimdBackend, UnsupportedRequestFallsBackToScalar) {
#if defined(__x86_64__) || defined(_M_X64)
  const Backend impossible = Backend::kNeon;
#else
  const Backend impossible = Backend::kAvx2;
#endif
  ScopedSimdBackend scope(impossible);
  EXPECT_EQ(active(), Backend::kScalar);
}

}  // namespace
}  // namespace geo::sc::simd
