#include "sc/progressive.hpp"

#include <gtest/gtest.h>

namespace geo::sc {
namespace {

TEST(ProgressiveSchedule, LoadRamp) {
  // 8-bit value, 8-bit LFSR, 2 bits / 2 cycles: 2,2,4,4,6,6,8,...
  const ProgressiveSchedule s{.value_bits = 8, .lfsr_bits = 8};
  EXPECT_EQ(s.loaded_bits(0), 2u);
  EXPECT_EQ(s.loaded_bits(1), 2u);
  EXPECT_EQ(s.loaded_bits(2), 4u);
  EXPECT_EQ(s.loaded_bits(4), 6u);
  EXPECT_EQ(s.loaded_bits(6), 8u);
  EXPECT_EQ(s.loaded_bits(100), 8u);
  EXPECT_EQ(s.full_load_cycle(), 6u);
}

TEST(ProgressiveSchedule, TruncatesToLfsrLength) {
  // 7-bit LFSR (128-bit streams): only 7 bits ever load; full by cycle < 8 —
  // the paper's "error in at most 8 cycles when using 7-bit LFSR".
  const ProgressiveSchedule s{.value_bits = 8, .lfsr_bits = 7};
  EXPECT_EQ(s.bits_to_load(), 7u);
  EXPECT_EQ(s.loaded_bits(6), 7u);
  EXPECT_LT(s.full_load_cycle(), 8u);
  EXPECT_EQ(s.beats(), 4u);  // 2+2+2+1
}

TEST(ProgressiveSchedule, ReloadLatencyGainIs4x) {
  // Generation starts after 1 beat instead of after all 4 beats of an 8-bit
  // value: the paper's 4x reload-latency reduction.
  const ProgressiveSchedule s{.value_bits = 8, .lfsr_bits = 8};
  EXPECT_EQ(s.normal_start_beats(), 4u);
  EXPECT_DOUBLE_EQ(s.reload_latency_gain(), 4.0);
}

TEST(ProgressiveSng, MatchesNormalAfterFullLoad) {
  // Once the value is fully loaded the progressive stream is bit-identical
  // to the normal stream (same LFSR phase).
  const ProgressiveSchedule sched{.value_bits = 8, .lfsr_bits = 8};
  ProgressiveSng sng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 19}, sched);
  for (std::uint32_t v : {1u, 77u, 200u, 255u}) {
    const Bitstream prog = sng.generate(v, 256);
    const Bitstream norm = sng.generate_normal(v, 256);
    for (std::size_t t = sched.full_load_cycle(); t < 256; ++t)
      EXPECT_EQ(prog.get(t), norm.get(t)) << "v=" << v << " t=" << t;
  }
}

TEST(ProgressiveSng, EarlyBitsOnlyUnderFire) {
  // Zero-padded low bits can only make the comparator value smaller, so a
  // progressive stream is a subset of the normal stream everywhere.
  const ProgressiveSchedule sched{.value_bits = 8, .lfsr_bits = 8};
  ProgressiveSng sng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 91}, sched);
  for (std::uint32_t v : {13u, 130u, 251u}) {
    const Bitstream prog = sng.generate(v, 256);
    const Bitstream norm = sng.generate_normal(v, 256);
    EXPECT_EQ(prog & norm, prog) << "v=" << v;
  }
}

TEST(ProgressiveSng, MsbOnlyValueIsExactImmediately) {
  // A value whose low 6 bits are zero is fully described by its 2 MSBs:
  // progressive generation is exact from cycle 0.
  const ProgressiveSchedule sched{.value_bits = 8, .lfsr_bits = 8};
  ProgressiveSng sng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 5}, sched);
  const Bitstream prog = sng.generate(0xC0, 255);
  const Bitstream norm = sng.generate_normal(0xC0, 255);
  EXPECT_EQ(prog, norm);
}

TEST(ProgressiveSng, FullPeriodCountCloseToValue) {
  // The handful of early under-fired cycles bound the popcount error.
  const ProgressiveSchedule sched{.value_bits = 8, .lfsr_bits = 8};
  ProgressiveSng sng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 33}, sched);
  for (std::uint32_t v : {9u, 100u, 237u}) {
    const Bitstream s = sng.generate(v, 255);
    EXPECT_LE(s.popcount(), static_cast<std::size_t>(v));
    EXPECT_GE(s.popcount() + sched.full_load_cycle(),
              static_cast<std::size_t>(v))
        << "error bounded by the load ramp";
  }
}

TEST(ProgressiveSng, ShortLfsrTruncatesValue) {
  // 5-bit LFSR / 32-bit streams: the value's low 3 bits never load —
  // matching the non-progressive truncation exactly.
  const ProgressiveSchedule sched{.value_bits = 8, .lfsr_bits = 5};
  ProgressiveSng sng(RngKind::kLfsr, SeedSpec{.bits = 5, .seed = 11}, sched);
  const Bitstream a = sng.generate(0b10110101, 31);
  const Bitstream b = sng.generate(0b10110111, 31);  // same top 5 bits
  EXPECT_EQ(a, b);
}

TEST(ProgressiveSng, MismatchedWidthThrows) {
  const ProgressiveSchedule sched{.value_bits = 8, .lfsr_bits = 7};
  EXPECT_THROW(
      ProgressiveSng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 1}, sched),
      std::invalid_argument);
}

// Parameterized multiplication-error property backing Fig. 2: progressive
// multiplication converges to normal multiplication within the load ramp.
class ProgressiveMul : public ::testing::TestWithParam<unsigned> {};

TEST_P(ProgressiveMul, ConvergesToNormal) {
  const unsigned lfsr_bits = GetParam();
  const auto len = static_cast<std::size_t>(1) << lfsr_bits;
  const ProgressiveSchedule sched{.value_bits = 8, .lfsr_bits = lfsr_bits};
  ProgressiveSng sa(RngKind::kLfsr, SeedSpec{.bits = lfsr_bits, .seed = 3},
                    sched);
  ProgressiveSng sb(RngKind::kLfsr, SeedSpec{.bits = lfsr_bits, .seed = 59},
                    sched);
  double worst = 0.0;
  for (std::uint32_t va = 32; va < 256; va += 64)
    for (std::uint32_t vb = 16; vb < 256; vb += 48) {
      const Bitstream pp = sa.generate(va, len) & sb.generate(vb, len);
      const Bitstream nn = sa.generate_normal(va, len) &
                           sb.generate_normal(vb, len);
      const double diff = std::abs(pp.value() - nn.value());
      worst = std::max(worst, diff);
    }
  // At most full_load_cycle() early cycles can differ.
  const double bound =
      static_cast<double>(sched.full_load_cycle() + 1) / static_cast<double>(len);
  EXPECT_LE(worst, bound);
}

INSTANTIATE_TEST_SUITE_P(LfsrWidths, ProgressiveMul,
                         ::testing::Values(5u, 6u, 7u, 8u));

}  // namespace
}  // namespace geo::sc
