#include "sc/lfsr.hpp"

#include <gtest/gtest.h>

#include <set>

namespace geo::sc {
namespace {

// Core invariant: every default polynomial is maximal-length — the register
// visits all 2^n - 1 nonzero states exactly once per period.
class LfsrMaximal : public ::testing::TestWithParam<unsigned> {};

TEST_P(LfsrMaximal, DefaultPolynomialHasFullPeriod) {
  const unsigned bits = GetParam();
  Lfsr l(bits, 1);
  std::set<std::uint32_t> seen;
  const std::uint32_t period = l.period();
  for (std::uint32_t i = 0; i < period; ++i) {
    const std::uint32_t s = l.next();
    EXPECT_NE(s, 0u);
    EXPECT_LT(s, 1u << bits);
    EXPECT_TRUE(seen.insert(s).second) << "state repeated: " << s;
  }
  EXPECT_EQ(seen.size(), period);
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrMaximal,
                         ::testing::Range(2u, 17u));  // 17..24 cost too much

TEST(Lfsr, WideDefaultsAreMaximalViaChecker) {
  // Spot-check the wider entries with the cheaper orbit checker.
  for (unsigned bits : {17u, 18u, 20u}) {
    EXPECT_TRUE(Lfsr::is_maximal(bits, Lfsr::default_taps(bits)))
        << "bits=" << bits;
  }
}

TEST(Lfsr, ZeroSeedMapsToOne) {
  Lfsr l(8, 0);
  EXPECT_EQ(l.state(), 1u);
}

TEST(Lfsr, SeedIsMasked) {
  Lfsr l(4, 0xF3);
  EXPECT_EQ(l.state(), 0x3u);
}

TEST(Lfsr, ResetReplaysSequence) {
  Lfsr l(8, 37);
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 50; ++i) first.push_back(l.next());
  l.reset();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(l.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Lfsr, DifferentSeedsAreShiftedSequences) {
  // Two seeds of the same polynomial generate the same m-sequence at
  // different phases: their state sets over a full period are identical.
  Lfsr a(6, 1), b(6, 33);
  std::set<std::uint32_t> sa, sb;
  for (std::uint32_t i = 0; i < a.period(); ++i) {
    sa.insert(a.next());
    sb.insert(b.next());
  }
  EXPECT_EQ(sa, sb);
}

TEST(Lfsr, RejectsBadWidth) {
  EXPECT_THROW(Lfsr(1, 1), std::invalid_argument);
  EXPECT_THROW(Lfsr(25, 1), std::invalid_argument);
}

TEST(Lfsr, RejectsEmptyTapMask) {
  EXPECT_THROW(Lfsr(8, 1, 0), std::invalid_argument);
}

TEST(Lfsr, IsMaximalRejectsNonMaximal) {
  // x^4 + x^2 + 1 = (x^2+x+1)^2 is not primitive.
  EXPECT_FALSE(Lfsr::is_maximal(4, 0b1010));
}

class FindTaps : public ::testing::TestWithParam<unsigned> {};

TEST_P(FindTaps, FindsDistinctMaximalPolynomials) {
  const unsigned bits = GetParam();
  const auto taps = Lfsr::find_maximal_taps(bits, 4);
  EXPECT_GE(taps.size(), 2u) << "need polynomial diversity at " << bits;
  std::set<std::uint32_t> unique(taps.begin(), taps.end());
  EXPECT_EQ(unique.size(), taps.size());
  for (std::uint32_t t : taps)
    EXPECT_TRUE(Lfsr::is_maximal(bits, t)) << "taps=" << t;
}

INSTANTIATE_TEST_SUITE_P(Widths, FindTaps, ::testing::Values(4u, 5u, 6u, 7u, 8u));

TEST(ConfigurableLfsr, SwitchesWidth) {
  // Fig. 4(c): the same physical generator serves 8- and 7-bit streams.
  ConfigurableLfsr l(8, 5);
  EXPECT_EQ(l.bits(), 8u);
  for (int i = 0; i < 10; ++i) l.next();
  l.configure(7, 5);
  EXPECT_EQ(l.bits(), 7u);
  for (int i = 0; i < 200; ++i) EXPECT_LT(l.next(), 128u);
}

}  // namespace
}  // namespace geo::sc
