#include "sc/seed_sharing.hpp"

#include "sc/ops.hpp"
#include "sc/sng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace geo::sc {
namespace {

constexpr KernelExtents kExt{/*cout=*/16, /*cin=*/8, /*kh=*/3, /*kw=*/3};

TEST(SeedAllocator, ModerateSharesAcrossKernels) {
  const SeedAllocator alloc(Sharing::kModerate, 7, kExt, 5);
  const SeedSpec a = alloc.weight({0, 2, 1, 2});
  const SeedSpec b = alloc.weight({9, 2, 1, 2});  // different kernel
  EXPECT_EQ(a, b) << "moderate sharing: same position, any kernel, same seed";
  const SeedSpec c = alloc.weight({0, 2, 1, 1});
  EXPECT_NE(a, c) << "different intra-kernel position, different seed";
}

TEST(SeedAllocator, NoneDistinguishesKernels) {
  const SeedAllocator alloc(Sharing::kNone, 7, kExt, 5);
  const SeedSpec a = alloc.weight({0, 2, 1, 2});
  const SeedSpec b = alloc.weight({9, 2, 1, 2});
  EXPECT_NE(a, b);
}

TEST(SeedAllocator, ExtremeSharesAcrossRows) {
  const SeedAllocator alloc(Sharing::kExtreme, 7, kExt, 5);
  const SeedSpec a = alloc.weight({0, 2, 1, 2});
  const SeedSpec b = alloc.weight({7, 5, 0, 2});  // same kw only
  EXPECT_EQ(a, b) << "extreme sharing keys on row position alone";
  EXPECT_NE(a, alloc.weight({0, 2, 1, 0}));
}

TEST(SeedAllocator, ModerateKernelSeedsDistinctWithinCapacity) {
  // One kernel's 72 generators must all differ while the seed space holds.
  const SeedAllocator alloc(Sharing::kModerate, 7, kExt, 9);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (int cin = 0; cin < kExt.cin; ++cin)
    for (int kh = 0; kh < kExt.kh; ++kh)
      for (int kw = 0; kw < kExt.kw; ++kw) {
        const SeedSpec s = alloc.weight({0, cin, kh, kw});
        EXPECT_TRUE(seen.insert({s.seed, s.taps}).second)
            << "collision at (" << cin << "," << kh << "," << kw << ")";
      }
}

TEST(SeedAllocator, SeedsAreNonZeroAndInRange) {
  const SeedAllocator alloc(Sharing::kNone, 5, kExt, 1);
  for (int k = 0; k < kExt.cout; ++k)
    for (int c = 0; c < kExt.cin; ++c) {
      const SeedSpec s = alloc.weight({k, c, 0, 0});
      EXPECT_GE(s.seed, 1u);
      EXPECT_LT(s.seed, 32u);
      EXPECT_TRUE(Lfsr::is_maximal(5, s.taps));
    }
}

TEST(SeedAllocator, CapacityExhaustionWrapsDeterministically) {
  // 4-bit space: 15 seeds x (#polys). A big layer must wrap — the paper's
  // "limit of availability of unique RNG seeds" — but deterministically.
  const KernelExtents big{64, 32, 3, 3};
  const SeedAllocator alloc(Sharing::kNone, 4, big, 2);
  EXPECT_GT(alloc.weight_ids(), alloc.capacity());
  const SeedSpec a = alloc.weight({63, 31, 2, 2});
  const SeedSpec b = alloc.weight({63, 31, 2, 2});
  EXPECT_EQ(a, b);
}

TEST(SeedAllocator, ActivationsAvoidWeightSeeds) {
  const SeedAllocator alloc(Sharing::kModerate, 8, kExt, 3);
  std::set<std::pair<std::uint32_t, std::uint32_t>> wgt;
  for (int cin = 0; cin < kExt.cin; ++cin)
    for (int kh = 0; kh < kExt.kh; ++kh)
      for (int kw = 0; kw < kExt.kw; ++kw) {
        const SeedSpec s = alloc.weight({0, cin, kh, kw});
        wgt.insert({s.seed, s.taps});
      }
  int collisions = 0;
  for (int i = 0; i < 72; ++i) {
    const SeedSpec s = alloc.activation(i);
    if (wgt.count({s.seed, s.taps})) ++collisions;
  }
  EXPECT_EQ(collisions, 0)
      << "weights and activations allocate from opposite ends";
}

TEST(SeedAllocator, LayerSaltRotatesSeeds) {
  const SeedAllocator l0(Sharing::kModerate, 7, kExt, 0);
  const SeedAllocator l1(Sharing::kModerate, 7, kExt, 1);
  int same = 0;
  for (int i = 0; i < 9; ++i)
    if (l0.weight({0, 0, 0, i % 3}) == l1.weight({0, 0, 0, i % 3})) ++same;
  EXPECT_LT(same, 9) << "different layers must not reuse identical seed maps";
}

TEST(SeedAllocator, WeightIdCounts) {
  const SeedAllocator none(Sharing::kNone, 7, kExt, 0);
  const SeedAllocator mod(Sharing::kModerate, 7, kExt, 0);
  const SeedAllocator ext(Sharing::kExtreme, 7, kExt, 0);
  EXPECT_EQ(none.weight_ids(), 16u * 8 * 3 * 3);
  EXPECT_EQ(mod.weight_ids(), 8u * 3 * 3);
  EXPECT_EQ(ext.weight_ids(), 3u);
  EXPECT_GT(none.weight_ids(), mod.weight_ids());
  EXPECT_GT(mod.weight_ids(), ext.weight_ids());
}

TEST(SeedAllocator, AdjacentGeneratorsUseDifferentPolynomials) {
  // Phase shifts of one m-sequence do not decorrelate comparator outputs,
  // so the allocator interleaves characteristic polynomials first: within a
  // kernel, neighboring positions never share taps (unless the width only
  // admits one polynomial).
  const SeedAllocator alloc(Sharing::kModerate, 7, kExt, 4);
  int same_taps = 0, pairs = 0;
  SeedSpec prev = alloc.weight({0, 0, 0, 0});
  for (int i = 1; i < 9; ++i) {
    const SeedSpec cur = alloc.weight({0, 0, i / 3, i % 3});
    if (cur.taps == prev.taps) ++same_taps;
    ++pairs;
    prev = cur;
  }
  EXPECT_EQ(same_taps, 0) << "neighbors must rotate polynomials";
}

TEST(SeedAllocator, ProductsOfAllocatedSeedsNearIndependent) {
  // End-to-end correlation check: streams from an allocated kernel's seeds
  // OR-accumulate close to the independence expectation.
  const SeedAllocator alloc(Sharing::kModerate, 8, kExt, 6);
  std::vector<Bitstream> streams;
  std::vector<double> ps;
  for (int i = 0; i < 12; ++i) {
    Sng sng(RngKind::kLfsr, alloc.weight({0, i % 8, (i / 8) % 3, 0}));
    streams.push_back(sng.generate(64, 256));
    ps.push_back(streams.back().value());
  }
  const double expectation = or_accumulate_expectation(ps);
  const double measured = or_accumulate(streams).value();
  EXPECT_NEAR(measured, expectation, 0.12);
}

TEST(SharingToString, Names) {
  EXPECT_STREQ(to_string(Sharing::kNone), "none");
  EXPECT_STREQ(to_string(Sharing::kModerate), "moderate");
  EXPECT_STREQ(to_string(Sharing::kExtreme), "extreme");
}

}  // namespace
}  // namespace geo::sc
