// Statistical properties of the m-sequences behind GEO's SNGs: balance,
// run-length distribution, and the two-level autocorrelation that makes
// shifted streams usable as (nearly) independent sources.
#include <gtest/gtest.h>

#include <vector>

#include "sc/lfsr.hpp"

namespace geo::sc {
namespace {

// Output bit sequence of one full period (MSB of the state).
std::vector<int> output_sequence(unsigned bits, std::uint32_t taps) {
  Lfsr l(bits, 1, taps);
  std::vector<int> seq;
  const std::uint32_t period = l.period();
  for (std::uint32_t i = 0; i < period; ++i)
    seq.push_back((l.next() >> (bits - 1)) & 1u);
  return seq;
}

class MSequence : public ::testing::TestWithParam<unsigned> {};

TEST_P(MSequence, BalanceProperty) {
  // An m-sequence of period 2^n - 1 has exactly 2^(n-1) ones.
  const unsigned bits = GetParam();
  const auto seq = output_sequence(bits, Lfsr::default_taps(bits));
  int ones = 0;
  for (int b : seq) ones += b;
  EXPECT_EQ(ones, 1 << (bits - 1));
}

TEST_P(MSequence, RunLengthProperty) {
  // Half the runs have length 1, a quarter length 2, etc. (Golomb's second
  // postulate). Check the count of length-1 runs exactly.
  const unsigned bits = GetParam();
  const auto seq = output_sequence(bits, Lfsr::default_taps(bits));
  // Count runs over the cyclic sequence.
  int runs = 0, len1_runs = 0;
  const std::size_t n = seq.size();
  for (std::size_t i = 0; i < n; ++i) {
    const int prev = seq[(i + n - 1) % n];
    if (seq[i] != prev) {
      ++runs;
      const int next = seq[(i + 1) % n];
      if (seq[i] != next) ++len1_runs;
    }
  }
  EXPECT_EQ(runs, 1 << (bits - 1)) << "total runs = 2^(n-1)";
  EXPECT_EQ(len1_runs, 1 << (bits - 2)) << "half of all runs have length 1";
}

TEST_P(MSequence, TwoLevelAutocorrelation) {
  // For every nonzero shift, agreements - disagreements = -1.
  const unsigned bits = GetParam();
  const auto seq = output_sequence(bits, Lfsr::default_taps(bits));
  const std::size_t n = seq.size();
  for (std::size_t shift : {1ul, 3ul, n / 2, n - 1}) {
    int corr = 0;
    for (std::size_t i = 0; i < n; ++i)
      corr += seq[i] == seq[(i + shift) % n] ? 1 : -1;
    EXPECT_EQ(corr, -1) << "bits=" << bits << " shift=" << shift;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MSequence, ::testing::Values(5u, 7u, 8u, 10u));

TEST(MSequence, AlternatePolynomialsGiveDifferentSequences) {
  const auto taps = Lfsr::find_maximal_taps(8, 4);
  ASSERT_GE(taps.size(), 2u);
  const auto a = output_sequence(8, taps[0]);
  const auto b = output_sequence(8, taps[1]);
  // Different primitive polynomials generate cyclically distinct sequences;
  // a direct comparison at zero shift must differ in many positions.
  int diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += a[i] != b[i];
  EXPECT_GT(diff, static_cast<int>(a.size() / 4));
}

}  // namespace
}  // namespace geo::sc
