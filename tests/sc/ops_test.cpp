#include "sc/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sc/sng.hpp"

namespace geo::sc {
namespace {

Bitstream gen(RngKind kind, std::uint32_t seed, double p, std::size_t len,
              unsigned bits = 8) {
  Sng sng(kind, SeedSpec{.bits = bits, .seed = seed});
  return sng.generate(quantize_unipolar(p, bits), len);
}

TEST(Ops, MultiplyIsAnd) {
  const Bitstream a = Bitstream::from_string("1101");
  const Bitstream b = Bitstream::from_string("1011");
  EXPECT_EQ(multiply(a, b).to_string(), "1001");
}

TEST(Ops, MultiplyApproximatesProduct) {
  // Independent streams (distinct seeds): AND approximates the product.
  const std::size_t len = 4096;
  for (double pa : {0.2, 0.5, 0.8}) {
    for (double pb : {0.3, 0.7}) {
      const Bitstream a = gen(RngKind::kLfsr, 11, pa, len);
      const Bitstream b = gen(RngKind::kLfsr, 97, pb, len);
      EXPECT_NEAR(multiply(a, b).value(), pa * pb, 0.05)
          << "pa=" << pa << " pb=" << pb;
    }
  }
}

TEST(Ops, BipolarMultiplyIsXnor) {
  const std::size_t len = 8192;
  // bipolar(a)=0.6, bipolar(b)=-0.4 -> product -0.24
  const Bitstream a = gen(RngKind::kLfsr, 5, 0.8, len);   // bipolar 0.6
  const Bitstream b = gen(RngKind::kLfsr, 111, 0.3, len); // bipolar -0.4
  EXPECT_NEAR(multiply_bipolar(a, b).bipolar_value(), -0.24, 0.06);
}

TEST(Ops, OrAccumulateExactForDisjoint) {
  const Bitstream a = Bitstream::from_string("1000");
  const Bitstream b = Bitstream::from_string("0100");
  const Bitstream c = Bitstream::from_string("0010");
  const Bitstream streams[] = {a, b, c};
  EXPECT_EQ(or_accumulate(streams).popcount(), 3u);
}

TEST(Ops, OrAccumulateUnderApproximatesSum) {
  // The OR union never exceeds the true sum — the loss GEO's partial binary
  // accumulation recovers.
  const std::size_t len = 2048;
  std::vector<Bitstream> streams;
  double sum = 0.0;
  for (int i = 0; i < 8; ++i) {
    const double p = 0.12;
    streams.push_back(gen(RngKind::kLfsr, 31 + 7u * static_cast<unsigned>(i),
                          p, len));
    sum += p;
  }
  const double or_value = or_accumulate(streams).value();
  EXPECT_LE(or_value, sum + 1e-9);
  // And matches the independence expectation 1 - (1-p)^8.
  std::vector<double> ps(8, 0.12);
  EXPECT_NEAR(or_value, or_accumulate_expectation(ps), 0.05);
}

TEST(Ops, OrAccumulateEmpty) {
  EXPECT_TRUE(or_accumulate({}).empty());
}

TEST(Ops, OrExpectationBasics) {
  const double one[] = {0.4};
  EXPECT_DOUBLE_EQ(or_accumulate_expectation(one), 0.4);
  const double two[] = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(or_accumulate_expectation(two), 0.75);
  EXPECT_DOUBLE_EQ(or_accumulate_expectation({}), 0.0);
}

TEST(Ops, MuxAddHalvesSum) {
  const std::size_t len = 8192;
  const Bitstream a = gen(RngKind::kLfsr, 13, 0.8, len);
  const Bitstream b = gen(RngKind::kLfsr, 77, 0.2, len);
  auto sel = make_source(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 201});
  EXPECT_NEAR(mux_add(a, b, *sel).value(), 0.5, 0.05);
}

// Regression: the select comparator must split the LFSR's *emitted* range
// [1, 2^n - 1], not the nominal [0, 2^n). With a = all-ones and
// b = all-zeros the output bit IS the select bit, so the popcount counts
// selects directly. Over two full 8-bit periods (2 * 255 = 510 draws) an
// unbiased select fires exactly 255 times; the old `next() < 2^(n-1)`
// threshold fired only 254 times (bias 1/510 toward b), which fails the
// exact check below.
TEST(Ops, MuxAddSelectIsExactlyHalfOverFullPeriods) {
  constexpr unsigned kBits = 8;
  constexpr std::size_t kPeriod = (1u << kBits) - 1;  // LFSR never emits 0
  const std::size_t len = 2 * kPeriod;                // even #periods: exact
  const Bitstream a(len, true);
  const Bitstream b(len, false);
  for (std::uint32_t seed : {1u, 77u, 201u}) {
    auto sel = make_source(RngKind::kLfsr,
                           SeedSpec{.bits = kBits, .seed = seed});
    const Bitstream out = mux_add(a, b, *sel);
    EXPECT_EQ(out.popcount(), len / 2) << "seed=" << seed;
    EXPECT_DOUBLE_EQ(out.value(), 0.5) << "seed=" << seed;
  }
}

// With the unbiased select, mux_add lands within sampling noise of
// (a + b) / 2 — tighter than the old systematic-bias floor at full-period
// lengths.
TEST(Ops, MuxAddApproximatesHalfSumTightly) {
  constexpr std::size_t kPeriod = 255;
  const std::size_t len = 32 * kPeriod;  // 8160
  const Bitstream a = gen(RngKind::kLfsr, 13, 0.8, len);
  const Bitstream b = gen(RngKind::kLfsr, 77, 0.2, len);
  auto sel = make_source(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 201});
  const double expect = (a.value() + b.value()) / 2.0;
  EXPECT_NEAR(mux_add(a, b, *sel).value(), expect, 0.02);
}

TEST(Ops, MuxAddLengthMismatchThrows) {
  auto sel = make_source(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 1});
  EXPECT_THROW(mux_add(Bitstream(8), Bitstream(16), *sel),
               std::invalid_argument);
}

TEST(Ops, SaturatingSubtract) {
  const Bitstream a = Bitstream::from_string("1110");
  const Bitstream b = Bitstream::from_string("0110");
  EXPECT_EQ(saturating_subtract(a, b).to_string(), "1000");
}

// Property: OR of correlated (same-seed) streams degenerates to max — the
// failure mode behind extreme sharing.
TEST(Ops, CorrelatedOrIsMaxNotSum) {
  const std::size_t len = 1024;
  const Bitstream a = gen(RngKind::kLfsr, 42, 0.3, len);
  const Bitstream b = gen(RngKind::kLfsr, 42, 0.4, len);  // same seed!
  const Bitstream streams[] = {a, b};
  EXPECT_NEAR(or_accumulate(streams).value(), 0.4, 0.02)
      << "nested streams: union equals the larger operand";
}

}  // namespace
}  // namespace geo::sc
