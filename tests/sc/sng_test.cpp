#include "sc/sng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace geo::sc {
namespace {

TEST(Quantize, RoundTripBounds) {
  EXPECT_EQ(quantize_unipolar(0.0, 8), 0u);
  EXPECT_EQ(quantize_unipolar(1.0, 8), 255u);  // saturates below 2^8
  EXPECT_EQ(quantize_unipolar(0.5, 8), 128u);
  EXPECT_EQ(quantize_unipolar(-0.3, 8), 0u);
  EXPECT_EQ(quantize_unipolar(2.0, 8), 255u);
  EXPECT_DOUBLE_EQ(dequantize_unipolar(128, 8), 0.5);
}

// The paper's "almost accurate generation": over one full LFSR period the
// stream carries exactly `value` ones.
class SngExact : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

TEST_P(SngExact, FullPeriodPopcountEqualsValue) {
  const auto [bits, value] = GetParam();
  Sng sng(RngKind::kLfsr, SeedSpec{.bits = bits, .seed = 17});
  const std::size_t period = (1u << bits) - 1u;
  const Bitstream s =
      sng.generate(static_cast<std::uint32_t>(value), period);
  EXPECT_EQ(s.popcount(), static_cast<std::size_t>(value));
}

INSTANTIATE_TEST_SUITE_P(
    ValuesAndWidths, SngExact,
    ::testing::Combine(::testing::Values(4u, 6u, 8u),
                       ::testing::Values(0, 1, 3, 7, 10, 15)));

TEST(Sng, StreamLengthPowerOfTwoIsNearExact) {
  // Streams of length 2^n repeat one LFSR state: popcount within +/-1.
  Sng sng(RngKind::kLfsr, SeedSpec{.bits = 7, .seed = 3});
  for (std::uint32_t v : {5u, 50u, 100u, 127u}) {
    const Bitstream s = sng.generate(v, 128);
    EXPECT_NEAR(static_cast<double>(s.popcount()), static_cast<double>(v), 1.0)
        << "value " << v;
  }
}

TEST(Sng, GenerateIsRepeatable) {
  Sng sng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 99});
  const Bitstream a = sng.generate(77, 256);
  const Bitstream b = sng.generate(77, 256);
  EXPECT_EQ(a, b) << "deterministic generation must replay exactly";
}

TEST(Sng, TrngGenerateIsNotRepeatable) {
  Sng sng(RngKind::kTrng, SeedSpec{.bits = 8, .seed = 99});
  const Bitstream a = sng.generate(128, 256);
  const Bitstream b = sng.generate(128, 256);
  EXPECT_NE(a, b);
  // But both should still be unbiased estimates of 0.5.
  EXPECT_NEAR(a.value(), 0.5, 0.15);
  EXPECT_NEAR(b.value(), 0.5, 0.15);
}

TEST(Sng, ZeroValueGivesEmptyStream) {
  for (RngKind kind : {RngKind::kLfsr, RngKind::kTrng}) {
    Sng sng(kind, SeedSpec{.bits = 8, .seed = 5});
    EXPECT_EQ(sng.generate(0, 128).popcount(), 0u) << to_string(kind);
  }
}

TEST(Sng, MonotoneInValue) {
  // With a shared source, the stream for a smaller value is a subset of the
  // stream for a larger one (nested streams — the root of extreme-sharing
  // correlation).
  Sng sng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 7});
  const Bitstream lo = sng.generate(60, 256);
  const Bitstream hi = sng.generate(180, 256);
  EXPECT_EQ((lo & hi), lo) << "smaller-value stream must nest inside larger";
}

TEST(Sng, TrngVarianceShrinksWithLength) {
  // TRNG error falls as 1/sqrt(L) [13]; check RMS at two lengths.
  auto rms_at = [](std::size_t len) {
    double acc = 0;
    int n = 0;
    for (std::uint32_t seed = 1; seed <= 40; ++seed) {
      Sng sng(RngKind::kTrng, SeedSpec{.bits = 8, .seed = seed});
      const double err = sng.generate(128, len).value() - 0.5;
      acc += err * err;
      ++n;
    }
    return std::sqrt(acc / n);
  };
  EXPECT_GT(rms_at(64), rms_at(1024) * 2.0);
}

TEST(Sng, NullSourceThrows) {
  EXPECT_THROW(Sng(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace geo::sc
