#include "sc/parallel_counter.hpp"

#include <gtest/gtest.h>

#include <random>

namespace geo::sc {
namespace {

std::vector<Bitstream> random_streams(int count, std::size_t len,
                                      unsigned seed, double p = 0.4) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution bit(p);
  std::vector<Bitstream> out;
  for (int i = 0; i < count; ++i) {
    Bitstream s(len);
    for (std::size_t j = 0; j < len; ++j) s.set(j, bit(rng));
    out.push_back(std::move(s));
  }
  return out;
}

TEST(ParallelCount, MatchesPerCycleSum) {
  const auto streams = random_streams(5, 100, 1);
  const auto counts = parallel_count(streams).value();
  ASSERT_EQ(counts.size(), 100u);
  for (std::size_t t = 0; t < 100; ++t) {
    std::uint16_t expected = 0;
    for (const auto& s : streams) expected += s.get(t) ? 1 : 0;
    EXPECT_EQ(counts[t], expected) << "cycle " << t;
  }
}

TEST(ParallelCount, EmptyInput) {
  EXPECT_TRUE(parallel_count({}).value().empty());
  EXPECT_EQ(count_total({}).value(), 0u);
}

// Regression: a length mismatch used to throw std::invalid_argument, which
// would tear down an exec::ThreadPool worker; it is a Status now.
TEST(ParallelCount, LengthMismatchIsInvalidArgument) {
  std::vector<Bitstream> bad;
  bad.emplace_back(10);
  bad.emplace_back(20);
  EXPECT_EQ(parallel_count(bad).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(count_total(bad).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(apc_count_total(bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CountTotal, IsExactSum) {
  const auto streams = random_streams(9, 257, 2);
  std::uint64_t expected = 0;
  for (const auto& s : streams) expected += s.popcount();
  EXPECT_EQ(count_total(streams).value(), expected);
}

// The exact parallel counter equals the sum of per-cycle counts — that is
// what makes partial-binary accumulation lossless past the OR stage.
TEST(CountTotal, EqualsAccumulatedParallelCounts) {
  const auto streams = random_streams(7, 128, 3);
  const auto per_cycle = parallel_count(streams).value();
  std::uint64_t acc = 0;
  for (auto c : per_cycle) acc += c;
  EXPECT_EQ(acc, count_total(streams).value());
}

class ApcError : public ::testing::TestWithParam<int> {};

TEST_P(ApcError, BoundedRelativeError) {
  // The alternating OR/AND APC over- and under-counts in compensating
  // directions; the residual error stays small relative to the total.
  const int n = GetParam();
  double worst = 0.0;
  for (unsigned seed = 1; seed <= 10; ++seed) {
    const auto streams = random_streams(n, 512, seed, 0.35);
    const double exact = static_cast<double>(count_total(streams).value());
    const double apc = static_cast<double>(apc_count_total(streams).value());
    if (exact > 0) worst = std::max(worst, std::abs(apc - exact) / exact);
  }
  EXPECT_LT(worst, 0.25) << "APC error should stay bounded";
}

// n = 2 is excluded: a lone OR pair has no compensating AND pair, so the
// alternation cannot cancel — checked separately below.
INSTANTIATE_TEST_SUITE_P(Widths, ApcError, ::testing::Values(4, 8, 9, 16, 25));

TEST(Apc, TwoInputsOverestimate) {
  const auto streams = random_streams(2, 512, 11, 0.35);
  EXPECT_GE(apc_count_total(streams).value(), count_total(streams).value())
      << "a single OR merge can only over-count";
}

TEST(Apc, SingleStreamPassesThrough) {
  const auto streams = random_streams(1, 64, 4);
  EXPECT_EQ(apc_count_total(streams).value(), streams[0].popcount());
}

TEST(Apc, IdenticalStreamsExact) {
  // a == b: both OR and AND merges are exact for identical pairs.
  auto streams = random_streams(1, 128, 5);
  streams.push_back(streams[0]);
  EXPECT_EQ(apc_count_total(streams).value(), count_total(streams).value());
}

TEST(OutputConverter, AccumulatesSignedCounts) {
  OutputConverter oc;
  oc.accumulate(3, 1);
  oc.accumulate(0, 2);
  EXPECT_EQ(oc.total(), 0);
  EXPECT_EQ(oc.cycles(), 2u);
  oc.accumulate(5, 0);
  EXPECT_EQ(oc.total(), 5);
  EXPECT_DOUBLE_EQ(oc.value(), 5.0 / 3.0);
}

TEST(OutputConverter, MergeModelsPoolingNeighborAdd) {
  OutputConverter a, b;
  a.accumulate(4, 0);
  b.accumulate(2, 1);
  a.merge(b);
  EXPECT_EQ(a.total(), 5);
  EXPECT_EQ(a.cycles(), 2u);
}

TEST(OutputConverter, Reset) {
  OutputConverter oc;
  oc.accumulate(7, 2);
  oc.reset();
  EXPECT_EQ(oc.total(), 0);
  EXPECT_EQ(oc.cycles(), 0u);
  EXPECT_DOUBLE_EQ(oc.value(), 0.0);
}

}  // namespace
}  // namespace geo::sc
