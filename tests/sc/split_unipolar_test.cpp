#include "sc/split_unipolar.hpp"

#include <gtest/gtest.h>

namespace geo::sc {
namespace {

TEST(SplitValue, QuantizeSigns) {
  const SplitValue pos = split_quantize(0.5, 8);
  EXPECT_EQ(pos.pos, 128u);
  EXPECT_EQ(pos.neg, 0u);
  const SplitValue neg = split_quantize(-0.25, 8);
  EXPECT_EQ(neg.pos, 0u);
  EXPECT_EQ(neg.neg, 64u);
  const SplitValue zero = split_quantize(0.0, 8);
  EXPECT_EQ(zero.pos, 0u);
  EXPECT_EQ(zero.neg, 0u);
}

TEST(SplitValue, DequantizeRoundTrip) {
  for (double v : {-1.0, -0.5, -0.125, 0.0, 0.25, 0.75}) {
    EXPECT_NEAR(split_dequantize(split_quantize(v, 8), 8), v, 1.0 / 128)
        << "v=" << v;
  }
}

TEST(SplitStream, GenerateMatchesValue) {
  Sng sng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 21});
  const SplitStream s = generate_split(sng, split_quantize(-0.5, 8), 256);
  EXPECT_EQ(s.length(), 256u);
  EXPECT_EQ(s.pos.popcount(), 0u);
  EXPECT_NEAR(s.value(), -0.5, 0.02);
}

TEST(SplitStream, ZeroValue) {
  Sng sng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 21});
  const SplitStream s = generate_split(sng, SplitValue{}, 64);
  EXPECT_EQ(s.pos.popcount(), 0u);
  EXPECT_EQ(s.neg.popcount(), 0u);
}

// Property: split multiplication carries the sign rule of arithmetic.
class SplitMulSigns
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SplitMulSigns, SignAndMagnitude) {
  const auto [va, vb] = GetParam();
  Sng sa(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 3});
  Sng sb(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 157});
  const std::size_t len = 4096;
  const SplitStream a = generate_split(sa, split_quantize(va, 8), len);
  const SplitStream b = generate_split(sb, split_quantize(vb, 8), len);
  const SplitStream prod = split_multiply(a, b);
  EXPECT_NEAR(prod.value(), va * vb, 0.06)
      << "va=" << va << " vb=" << vb;
}

INSTANTIATE_TEST_SUITE_P(
    Quadrants, SplitMulSigns,
    ::testing::Values(std::make_tuple(0.6, 0.7), std::make_tuple(0.6, -0.7),
                      std::make_tuple(-0.6, 0.7), std::make_tuple(-0.6, -0.7),
                      std::make_tuple(0.0, 0.9), std::make_tuple(-1.0, 1.0)));

TEST(SplitStream, OrAccumulateBothChannels) {
  Sng s1(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 3});
  Sng s2(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 91});
  SplitStream acc = generate_split(s1, split_quantize(0.3, 8), 512);
  const SplitStream b = generate_split(s2, split_quantize(-0.4, 8), 512);
  split_or_accumulate(acc, b);
  EXPECT_NEAR(acc.pos.value(), 0.3, 0.05);
  EXPECT_NEAR(acc.neg.value(), 0.4, 0.05);
  EXPECT_NEAR(acc.value(), -0.1, 0.08);
}

TEST(SplitStream, AccumulationNeverExceedsOne) {
  // OR accumulation saturates at probability 1 per channel, by construction.
  std::vector<Sng> sngs;
  SplitStream acc{Bitstream(256), Bitstream(256)};
  for (unsigned i = 0; i < 16; ++i) {
    Sng sng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 7 + i * 13});
    const SplitStream s = generate_split(sng, split_quantize(0.4, 8), 256);
    split_or_accumulate(acc, s);
  }
  EXPECT_LE(acc.pos.value(), 1.0);
  EXPECT_GE(acc.pos.value(), 0.95) << "16 streams of 0.4 nearly saturate";
}

}  // namespace
}  // namespace geo::sc
