#include "sc/bitstream.hpp"

#include <gtest/gtest.h>

#include <random>

namespace geo::sc {
namespace {

TEST(Bitstream, DefaultIsEmpty) {
  Bitstream s;
  EXPECT_EQ(s.length(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.popcount(), 0u);
  EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Bitstream, FillConstructor) {
  Bitstream zeros(100, false);
  EXPECT_EQ(zeros.popcount(), 0u);
  Bitstream ones(100, true);
  EXPECT_EQ(ones.popcount(), 100u);
  EXPECT_DOUBLE_EQ(ones.value(), 1.0);
}

TEST(Bitstream, FillMasksTail) {
  // A filled stream must not have set bits beyond its length in the last
  // word; popcount would otherwise overcount.
  Bitstream s(70, true);
  EXPECT_EQ(s.popcount(), 70u);
  EXPECT_EQ(s.words().back() >> 6, 0u);
}

TEST(Bitstream, SetGetRoundTrip) {
  Bitstream s(130);
  s.set(0, true);
  s.set(64, true);
  s.set(129, true);
  EXPECT_TRUE(s.get(0));
  EXPECT_TRUE(s.get(64));
  EXPECT_TRUE(s.get(129));
  EXPECT_FALSE(s.get(1));
  EXPECT_EQ(s.popcount(), 3u);
  s.set(64, false);
  EXPECT_FALSE(s.get(64));
  EXPECT_EQ(s.popcount(), 2u);
}

TEST(Bitstream, FromBitsAndToString) {
  const Bitstream s = Bitstream::from_bits({true, false, true, true});
  EXPECT_EQ(s.to_string(), "1011");
  EXPECT_EQ(Bitstream::from_string("1011"), s);
}

// from_bits / from_string assemble whole words; the word-boundary lengths
// (63/64/65) and the empty stream are where an off-by-one would land.
TEST(Bitstream, FromBitsRoundTripsAtWordBoundaries) {
  std::mt19937 rng(7);
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                          std::size_t{64}, std::size_t{65},
                          std::size_t{1000}}) {
    std::vector<bool> bits(len);
    std::string str(len, '0');
    std::size_t ones = 0;
    for (std::size_t i = 0; i < len; ++i) {
      const bool v = (rng() & 1u) != 0;
      bits[i] = v;
      str[i] = v ? '1' : '0';
      ones += v;
    }
    const Bitstream from_b = Bitstream::from_bits(bits);
    const Bitstream from_s = Bitstream::from_string(str);
    ASSERT_EQ(from_b.length(), len);
    EXPECT_EQ(from_b, from_s) << "len=" << len;
    EXPECT_EQ(from_b.popcount(), ones) << "len=" << len;
    EXPECT_EQ(from_b.to_string(), str) << "len=" << len;
    for (std::size_t i = 0; i < len; ++i)
      ASSERT_EQ(from_b.get(i), static_cast<bool>(bits[i]))
          << "len=" << len << " i=" << i;
    // The tail word past the logical length must stay zero (popcount and
    // whole-word kernels rely on it).
    if (len % 64 != 0 && !from_b.words().empty()) {
      EXPECT_EQ(from_b.words().back() >> (len % 64), 0u) << "len=" << len;
    }
  }
}

TEST(Bitstream, LogicOps) {
  const Bitstream a = Bitstream::from_string("1100");
  const Bitstream b = Bitstream::from_string("1010");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((~a).to_string(), "0011");
}

TEST(Bitstream, ComplementMasksTail) {
  const Bitstream a(65, false);
  const Bitstream na = ~a;
  EXPECT_EQ(na.popcount(), 65u);
  EXPECT_EQ(na.words().back() >> 1, 0u);
}

TEST(Bitstream, BipolarValue) {
  EXPECT_DOUBLE_EQ(Bitstream::from_string("1111").bipolar_value(), 1.0);
  EXPECT_DOUBLE_EQ(Bitstream::from_string("0000").bipolar_value(), -1.0);
  EXPECT_DOUBLE_EQ(Bitstream::from_string("1100").bipolar_value(), 0.0);
}

TEST(Bitstream, PopcountPrefix) {
  Bitstream s(200);
  for (std::size_t i = 0; i < 200; i += 3) s.set(i, true);
  for (std::size_t n : {0u, 1u, 63u, 64u, 65u, 128u, 199u, 200u}) {
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (s.get(i)) ++expected;
    EXPECT_EQ(s.popcount_prefix(n), expected) << "n=" << n;
  }
  EXPECT_THROW(s.popcount_prefix(201), std::out_of_range);
}

// Property: word-level ops agree with bit-level reference on random streams.
class BitstreamProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitstreamProperty, WordOpsMatchBitOps) {
  const std::size_t len = GetParam();
  std::mt19937 rng(static_cast<unsigned>(len));
  std::bernoulli_distribution bit(0.4);
  Bitstream a(len), b(len);
  for (std::size_t i = 0; i < len; ++i) {
    a.set(i, bit(rng));
    b.set(i, bit(rng));
  }
  const Bitstream and_s = a & b, or_s = a | b, xor_s = a ^ b;
  std::size_t and_pc = 0;
  for (std::size_t i = 0; i < len; ++i) {
    EXPECT_EQ(and_s.get(i), a.get(i) && b.get(i));
    EXPECT_EQ(or_s.get(i), a.get(i) || b.get(i));
    EXPECT_EQ(xor_s.get(i), a.get(i) != b.get(i));
    if (a.get(i) && b.get(i)) ++and_pc;
  }
  EXPECT_EQ(and_s.popcount(), and_pc);
}

INSTANTIATE_TEST_SUITE_P(Lengths, BitstreamProperty,
                         ::testing::Values(1, 7, 32, 63, 64, 65, 127, 128,
                                           200, 1024));

}  // namespace
}  // namespace geo::sc
