// Randomized property tests cross-checking the packed-word substrate
// against a naive std::vector<bool> reference model, plus exhaustive SNG
// sweeps at small widths.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sc/bitstream.hpp"
#include "sc/split_unipolar.hpp"
#include "sc/lfsr.hpp"
#include "sc/ops.hpp"
#include "sc/parallel_counter.hpp"
#include "sc/sng.hpp"

namespace geo::sc {
namespace {

// Naive reference model of a bitstream.
using Ref = std::vector<bool>;

Ref to_ref(const Bitstream& s) {
  Ref r(s.length());
  for (std::size_t i = 0; i < s.length(); ++i) r[i] = s.get(i);
  return r;
}

Bitstream random_stream(std::mt19937& rng, std::size_t len, double p) {
  std::bernoulli_distribution bit(p);
  Bitstream s(len);
  for (std::size_t i = 0; i < len; ++i) s.set(i, bit(rng));
  return s;
}

TEST(BitstreamFuzz, OpsMatchReferenceModel) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<std::size_t> len_dist(1, 300);
  std::uniform_real_distribution<double> p_dist(0.0, 1.0);
  for (int round = 0; round < 50; ++round) {
    const std::size_t len = len_dist(rng);
    const Bitstream a = random_stream(rng, len, p_dist(rng));
    const Bitstream b = random_stream(rng, len, p_dist(rng));
    const Ref ra = to_ref(a), rb = to_ref(b);

    const Bitstream ops[] = {a & b, a | b, a ^ b, ~a};
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(ops[0].get(i), ra[i] && rb[i]) << "AND round " << round;
      ASSERT_EQ(ops[1].get(i), ra[i] || rb[i]) << "OR round " << round;
      ASSERT_EQ(ops[2].get(i), ra[i] != rb[i]) << "XOR round " << round;
      ASSERT_EQ(ops[3].get(i), !ra[i]) << "NOT round " << round;
    }
    std::size_t ref_pc = 0;
    for (bool v : ra) ref_pc += v;
    ASSERT_EQ(a.popcount(), ref_pc);
    const std::size_t cut = len / 2;
    std::size_t ref_prefix = 0;
    for (std::size_t i = 0; i < cut; ++i) ref_prefix += ra[i];
    ASSERT_EQ(a.popcount_prefix(cut), ref_prefix);
  }
}

TEST(ParallelCounterFuzz, MatchesReferenceAcrossShapes) {
  std::mt19937 rng(123);
  std::uniform_int_distribution<int> count_dist(1, 24);
  std::uniform_int_distribution<std::size_t> len_dist(1, 200);
  for (int round = 0; round < 30; ++round) {
    const int count = count_dist(rng);
    const std::size_t len = len_dist(rng);
    std::vector<Bitstream> streams;
    for (int i = 0; i < count; ++i)
      streams.push_back(random_stream(rng, len, 0.3));
    const auto counts = parallel_count(streams).value();
    std::uint64_t total = 0;
    for (std::size_t t = 0; t < len; ++t) {
      std::uint16_t expected = 0;
      for (const auto& s : streams) expected += s.get(t);
      ASSERT_EQ(counts[t], expected) << "round " << round << " cycle " << t;
      total += expected;
    }
    ASSERT_EQ(count_total(streams).value(), total);
  }
}

// Exhaustive SNG check at small widths: every representable value, over a
// full period, must count exactly (the "almost accurate generation"
// property underlying GEO's deterministic training).
class SngExhaustive : public ::testing::TestWithParam<unsigned> {};

TEST_P(SngExhaustive, AllValuesExactOverFullPeriod) {
  const unsigned bits = GetParam();
  const std::size_t period = (1u << bits) - 1u;
  for (std::uint32_t seed : {1u, 5u, 11u}) {
    Sng sng(RngKind::kLfsr, SeedSpec{.bits = bits, .seed = seed});
    for (std::uint32_t v = 0; v < (1u << bits); ++v) {
      const std::uint32_t expect = std::min(v, static_cast<std::uint32_t>(
                                                   period));
      ASSERT_EQ(sng.generate(v, period).popcount(), expect)
          << "bits=" << bits << " seed=" << seed << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SngExhaustive, ::testing::Values(4u, 5u, 6u));

// Every alternate polynomial must give the same exactness guarantee.
TEST(SngExhaustive, AlternatePolynomialsEquallyExact) {
  const unsigned bits = 5;
  const std::size_t period = 31;
  for (std::uint32_t taps : Lfsr::find_maximal_taps(bits, 6)) {
    Sng sng(RngKind::kLfsr,
            SeedSpec{.bits = bits, .seed = 3, .taps = taps});
    for (std::uint32_t v = 0; v < 32; ++v)
      ASSERT_EQ(sng.generate(v, period).popcount(), std::min(v, 31u))
          << "taps=" << taps << " v=" << v;
  }
}

// OR-accumulation algebraic properties on random stream sets.
TEST(OrAccumulateFuzz, UnionBounds) {
  std::mt19937 rng(7);
  for (int round = 0; round < 25; ++round) {
    std::uniform_int_distribution<int> count_dist(1, 12);
    const int count = count_dist(rng);
    std::vector<Bitstream> streams;
    std::size_t max_pc = 0, sum_pc = 0;
    for (int i = 0; i < count; ++i) {
      streams.push_back(random_stream(rng, 128, 0.2));
      max_pc = std::max(max_pc, streams.back().popcount());
      sum_pc += streams.back().popcount();
    }
    const std::size_t union_pc = or_accumulate(streams).popcount();
    ASSERT_GE(union_pc, max_pc) << "union >= max operand";
    ASSERT_LE(union_pc, std::min<std::size_t>(sum_pc, 128))
        << "union <= sum and <= length";
  }
}

TEST(OrAccumulateFuzz, IdempotentAndCommutative) {
  std::mt19937 rng(17);
  const Bitstream a = random_stream(rng, 200, 0.4);
  const Bitstream b = random_stream(rng, 200, 0.3);
  const Bitstream ab[] = {a, b};
  const Bitstream ba[] = {b, a};
  const Bitstream aab[] = {a, a, b};
  EXPECT_EQ(or_accumulate(ab), or_accumulate(ba));
  EXPECT_EQ(or_accumulate(aab), or_accumulate(ab));
}

// Split-unipolar algebra on random signed values.
TEST(SplitFuzz, MultiplySignTable) {
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> v_dist(-1.0, 1.0);
  for (int round = 0; round < 40; ++round) {
    const double va = v_dist(rng), vb = v_dist(rng);
    Sng sa(RngKind::kLfsr,
           SeedSpec{.bits = 8, .seed = 3 + 2 * static_cast<unsigned>(round)});
    Sng sb(RngKind::kLfsr,
           SeedSpec{.bits = 8,
                    .seed = 119 + 2 * static_cast<unsigned>(round)});
    const SplitStream a = generate_split(sa, split_quantize(va, 8), 2048);
    const SplitStream b = generate_split(sb, split_quantize(vb, 8), 2048);
    ASSERT_NEAR(split_multiply(a, b).value(), va * vb, 0.08)
        << "va=" << va << " vb=" << vb;
  }
}

}  // namespace
}  // namespace geo::sc
