#include "sc/stream_stats.hpp"

#include <gtest/gtest.h>

#include "sc/sng.hpp"

namespace geo::sc {
namespace {

TEST(Rms, Basics) {
  const double e[] = {3.0, 4.0};
  EXPECT_NEAR(rms(e), std::sqrt(12.5), 1e-12);
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
  const double zero[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(rms(zero), 0.0);
}

TEST(MeanAbs, Basics) {
  const double e[] = {-2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_abs(e), 3.0);
  EXPECT_DOUBLE_EQ(mean_abs({}), 0.0);
}

TEST(Scc, IdenticalStreamsFullyCorrelated) {
  Sng sng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 7});
  const Bitstream a = sng.generate(100, 512);
  EXPECT_NEAR(scc(a, a), 1.0, 1e-9);
}

TEST(Scc, DisjointStreamsNegative) {
  const Bitstream a = Bitstream::from_string("11110000");
  const Bitstream b = Bitstream::from_string("00001111");
  EXPECT_NEAR(scc(a, b), -1.0, 1e-9);
}

TEST(Scc, IndependentSeedsNearZero) {
  Sng sa(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 7});
  Sng sb(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 201});
  const Bitstream a = sa.generate(128, 2048);
  const Bitstream b = sb.generate(128, 2048);
  EXPECT_LT(std::abs(scc(a, b)), 0.15);
}

TEST(Scc, NestedSameSeedStreamsFullyCorrelated) {
  // The extreme-sharing pathology: same seed, different values.
  Sng sng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 7});
  const Bitstream lo = sng.generate(60, 512);
  const Bitstream hi = sng.generate(200, 512);
  EXPECT_NEAR(scc(lo, hi), 1.0, 0.05);
}

TEST(Scc, ConstantStreamIsZero) {
  const Bitstream ones(64, true);
  const Bitstream mixed = Bitstream::from_string(
      "1010101010101010101010101010101010101010101010101010101010101010");
  EXPECT_DOUBLE_EQ(scc(ones, mixed), 0.0);
}

TEST(Scc, LengthMismatchThrows) {
  EXPECT_THROW(scc(Bitstream(4), Bitstream(8)), std::invalid_argument);
}

TEST(Pearson, MatchesSignOfScc) {
  Sng sng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 3});
  const Bitstream a = sng.generate(120, 1024);
  const Bitstream b = sng.generate(140, 1024);  // nested -> positive
  EXPECT_GT(pearson(a, b), 0.5);
  EXPECT_GT(scc(a, b), 0.5);
}

TEST(Pearson, ConstantStreamIsZero) {
  const Bitstream zeros(32, false);
  const Bitstream other = Bitstream::from_string(
      "10101010101010101010101010101010");
  EXPECT_DOUBLE_EQ(pearson(zeros, other), 0.0);
}

}  // namespace
}  // namespace geo::sc
