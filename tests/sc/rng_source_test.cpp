#include "sc/rng_source.hpp"

#include <gtest/gtest.h>

#include "sc/sobol.hpp"

namespace geo::sc {
namespace {

TEST(LfsrSource, DeterministicReplay) {
  SeedSpec spec{.bits = 8, .seed = 11};
  LfsrSource src(spec);
  EXPECT_TRUE(src.deterministic());
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 32; ++i) first.push_back(src.next());
  src.reset();
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(src.next(), first[static_cast<std::size_t>(i)]);
}

// A maximal-length LFSR never reaches the all-zero state, so its emitted
// range floor is 1; every other source covers the full [0, 2^bits) range.
// Consumers that split the range (sc::mux_add) key their thresholds off
// this — see MuxAddSelectIsExactlyHalfOverFullPeriods.
TEST(LfsrSource, MinValueReflectsEmittedRange) {
  SeedSpec spec{.bits = 8, .seed = 11};
  EXPECT_EQ(LfsrSource(spec).min_value(), 1u);
  EXPECT_EQ(TrngSource(spec).min_value(), 0u);
  EXPECT_EQ(CounterSource(spec).min_value(), 0u);
  LfsrSource lfsr(spec);
  for (int i = 0; i < 512; ++i) EXPECT_GE(lfsr.next(), lfsr.min_value());
}

TEST(LfsrSource, CloneReproduces) {
  SeedSpec spec{.bits = 6, .seed = 5};
  LfsrSource a(spec);
  auto b = a.clone();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next(), b->next());
}

TEST(TrngSource, ResetGivesFreshSequence) {
  SeedSpec spec{.bits = 8, .seed = 3};
  TrngSource src(spec);
  EXPECT_FALSE(src.deterministic());
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 64; ++i) first.push_back(src.next());
  src.reset();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (src.next() == first[static_cast<std::size_t>(i)]) ++same;
  EXPECT_LT(same, 16) << "TRNG reset must not replay";
}

TEST(TrngSource, SameSeedSameInitialSequence) {
  // Sharing a TRNG source means sharing its output within a pass.
  SeedSpec spec{.bits = 8, .seed = 9};
  TrngSource a(spec), b(spec);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(TrngSource, ValuesInRange) {
  SeedSpec spec{.bits = 5, .seed = 1};
  TrngSource src(spec);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(src.next(), 32u);
}

TEST(CounterSource, RampsAndWraps) {
  SeedSpec spec{.bits = 3, .seed = 6};
  CounterSource src(spec);
  const std::uint32_t expect[] = {6, 7, 0, 1, 2, 3, 4, 5, 6};
  for (std::uint32_t e : expect) EXPECT_EQ(src.next(), e);
}

TEST(MakeSource, BuildsEveryKind) {
  SeedSpec spec{.bits = 8, .seed = 2};
  for (RngKind kind : {RngKind::kLfsr, RngKind::kTrng, RngKind::kCounter,
                       RngKind::kSobol}) {
    auto src = make_source(kind, spec);
    ASSERT_NE(src, nullptr) << to_string(kind);
    EXPECT_EQ(src->bits(), 8u);
    src->next();
  }
}

TEST(SobolSource, FirstDimensionIsVanDerCorput) {
  SeedSpec spec{.bits = 8, .seed = 0};
  SobolSource src(spec);
  // First points of the base-2 van der Corput sequence scaled to 8 bits:
  // 0, 1/2, 1/4, 3/4, ...
  EXPECT_EQ(src.next(), 0u);
  EXPECT_EQ(src.next(), 128u);
  EXPECT_EQ(src.next(), 192u);
  EXPECT_EQ(src.next(), 64u);
}

TEST(SobolSource, LowDiscrepancyCoverage) {
  // Any 2^k consecutive points of a Sobol dimension hit each of the 2^k
  // equal bins exactly once — the property that makes single-stream SC
  // generation converge fast [23].
  for (unsigned dim = 0; dim < SobolSource::kDimensions; ++dim) {
    SeedSpec spec{.bits = 8, .seed = dim};
    SobolSource src(spec);
    std::vector<int> bins(16, 0);
    for (int i = 0; i < 16; ++i) ++bins[src.next() >> 4];
    for (int b = 0; b < 16; ++b)
      EXPECT_EQ(bins[static_cast<std::size_t>(b)], 1)
          << "dim " << dim << " bin " << b;
  }
}

TEST(SobolSource, ResetRestarts) {
  SeedSpec spec{.bits = 8, .seed = 3};
  SobolSource src(spec);
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(src.next());
  src.reset();
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(src.next(), first[static_cast<std::size_t>(i)]);
}

}  // namespace
}  // namespace geo::sc
