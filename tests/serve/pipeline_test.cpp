// Pipeline-sharded serving: byte-equivalence with serial layer-by-layer
// execution, admission validation, stage failover under a faulted stage
// (zero failed requests), and double-buffered handoff bookkeeping.
#include <gtest/gtest.h>

#include <future>
#include <random>
#include <vector>

#include "fault/fault_model.hpp"
#include "nn/quantize.hpp"
#include "resilience/resilience.hpp"
#include "serve/pipeline.hpp"

namespace geo::serve {
namespace {

using arch::ConvShape;
using arch::HwConfig;
using fault::FaultConfig;
using fault::ScopedFaultInjection;

FaultConfig persistent_fault() {
  auto cfg = FaultConfig::parse("sram=2e-2,burst=2,ecc=secded,rng=99");
  EXPECT_TRUE(cfg.ok());
  return *cfg;
}

HwConfig small_hw() {
  HwConfig hw = HwConfig::ulp();
  hw.accum = nn::AccumMode::kPbw;
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;
  return hw;
}

ServeOptions quiet_options() {
  ServeOptions o;
  o.replicas = 1;
  o.queue_capacity = 64;
  o.high_water = 64;  // no load steering — deterministic outputs
  o.tenant_quota = 64;
  o.retries = 1;
  o.retry_backoff_us = 0;
  return o;
}

// Two chained conv layers: l0 produces 5x6x6 = 180 outputs, l1 consumes
// 5-channel 6x6 activations. Weights/BN caller-owned, as LayerSpec requires.
struct NetFixture {
  ConvShape shape0 = ConvShape::conv("l0", 4, 6, 5, 3, 1, false);
  ConvShape shape1 = ConvShape::conv("l1", 5, 6, 6, 3, 1, false);
  std::vector<float> w0, w1, ones0, zeros0, ones1, zeros1, input;

  NetFixture() {
    EXPECT_EQ(shape1.activations(), shape0.outputs());
    std::mt19937 rng(77);
    std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    w0.resize(static_cast<std::size_t>(shape0.weights()));
    for (auto& w : w0) w = wdist(rng);
    w1.resize(static_cast<std::size_t>(shape1.weights()));
    for (auto& w : w1) w = wdist(rng);
    input.resize(static_cast<std::size_t>(shape0.activations()));
    for (auto& a : input) a = adist(rng);
    ones0.assign(static_cast<std::size_t>(shape0.cout), 1.0f);
    zeros0.assign(static_cast<std::size_t>(shape0.cout), 0.0f);
    ones1.assign(static_cast<std::size_t>(shape1.cout), 1.0f);
    zeros1.assign(static_cast<std::size_t>(shape1.cout), 0.0f);
  }

  NetworkRequest request(std::string label = "net") const {
    NetworkRequest req;
    req.layers = {{shape0, w0, ones0, zeros0, /*layer_salt=*/9, ""},
                  {shape1, w1, ones1, zeros1, /*layer_salt=*/10, ""}};
    req.input = input;
    req.label = std::move(label);
    return req;
  }
};

TEST(PipelineRouter, MatchesSerialLayerByLayerExecution) {
  ScopedFaultInjection off(nullptr);
  const NetFixture f;
  const HwConfig hw = small_hw();

  // Serial reference: run both layers on one executor, chaining activations
  // through the same 8-bit dequantization the router uses.
  arch::MachineResult ref;
  {
    resilience::ResilientExecutor executor(hw, resilience::RetryPolicy{});
    auto r0 = executor.run_conv(f.shape0, f.w0, f.input, f.ones0, f.zeros0, 9);
    ASSERT_TRUE(r0.ok());
    std::vector<float> chained(r0->activations.size());
    for (std::size_t i = 0; i < chained.size(); ++i)
      chained[i] = nn::dequantize_unsigned(r0->activations[i], 8);
    auto r1 = executor.run_conv(f.shape1, f.w1, chained, f.ones1, f.zeros1, 10);
    ASSERT_TRUE(r1.ok());
    ref = *std::move(r1);
  }

  PipelineRouter router(hw, /*stages=*/2, quiet_options());
  for (int s = 0; s < router.stages(); ++s)
    router.stage(s).set_replica_fault(0, FaultConfig{});
  NetworkResponse resp = router.run(f.request());
  ASSERT_TRUE(resp.status.ok()) << resp.status.to_string();
  EXPECT_FALSE(resp.degraded);
  EXPECT_EQ(resp.failovers, 0);
  EXPECT_EQ(resp.result.counters, ref.counters);
  EXPECT_EQ(resp.result.activations, ref.activations);

  const PipelineStats s = router.stats();
  EXPECT_EQ(s.submitted, 1);
  EXPECT_EQ(s.completed, 1);
  EXPECT_EQ(s.failed, 0);
  EXPECT_EQ(s.handoffs, 1);
}

TEST(PipelineRouter, RejectsMalformedNetworks) {
  ScopedFaultInjection off(nullptr);
  const NetFixture f;
  PipelineRouter router(small_hw(), /*stages=*/2, quiet_options());

  NetworkRequest empty;
  EXPECT_FALSE(router.submit(std::move(empty)).ok());

  NetworkRequest one_layer = f.request();
  one_layer.layers.resize(1);  // 1 layer over 2 stages leaves one empty
  EXPECT_FALSE(router.submit(std::move(one_layer)).ok());

  NetworkRequest short_input = f.request();
  std::vector<float> truncated(f.input.begin(), f.input.end() - 1);
  short_input.input = truncated;
  EXPECT_FALSE(router.submit(std::move(short_input)).ok());

  NetworkRequest mischained = f.request();
  std::swap(mischained.layers[0], mischained.layers[1]);
  mischained.input = std::span<const float>();  // wrong size anyway
  EXPECT_FALSE(router.submit(std::move(mischained)).ok());

  NetworkRequest bad_deadline = f.request();
  bad_deadline.deadline_us = -1;
  EXPECT_FALSE(router.submit(std::move(bad_deadline)).ok());

  EXPECT_EQ(router.stats().failed, 0);  // refusals are not failures
}

// Satellite: a faulted replica inside one stage fails over to its healthy
// peer — every network completes at full fidelity and the stage's breaker
// quarantines the bad replica. Zero failed requests throughout.
TEST(PipelineRouter, StageFailoverKeepsFidelityAndZeroFailed) {
  ScopedFaultInjection off(nullptr);
  const NetFixture f;

  ServeOptions o = quiet_options();
  o.replicas = 2;
  o.retries = 2;
  o.breaker_strikes = 2;
  o.probe_after = 1 << 20;  // no probes during the test
  PipelineRouter router(small_hw(), /*stages=*/2, o);
  router.stage(0).set_replica_fault(0, FaultConfig{});
  router.stage(0).set_replica_fault(1, FaultConfig{});
  router.stage(1).set_replica_fault(0, persistent_fault());
  router.stage(1).set_replica_fault(1, FaultConfig{});

  // Which replica claims a request races on worker wake-up, so keep serving
  // until the faulted replica has taken enough strikes to quarantine (same
  // bounded-rounds idiom as the single-server failover test).
  int completed = 0;
  int failovers = 0;
  bool opened = false;
  for (int i = 0; i < 60 && !opened; ++i) {
    NetworkResponse resp = router.run(f.request("net" + std::to_string(i)));
    ASSERT_TRUE(resp.status.ok()) << i << ": " << resp.status.to_string();
    EXPECT_FALSE(resp.degraded) << i;  // healthy peer preserved fidelity
    failovers += resp.failovers;
    ++completed;
    opened = router.stage(1).stats().quarantines > 0;
  }
  ASSERT_TRUE(opened) << "stage 1's faulted replica never quarantined";
  EXPECT_GT(failovers, 0);

  const PipelineStats s = router.stats();
  EXPECT_EQ(s.completed, completed);
  EXPECT_EQ(s.failed, 0);
  EXPECT_EQ(s.degraded, 0);
}

// An entire stage's replicas persistently faulted: networks complete
// degraded (the stage's ladder walks down) but none fail.
TEST(PipelineRouter, FullyFaultedStageDegradesWithZeroFailed) {
  ScopedFaultInjection off(nullptr);
  const NetFixture f;

  ServeOptions o = quiet_options();
  o.replicas = 2;
  o.breaker_strikes = 2;
  PipelineRouter router(small_hw(), /*stages=*/2, o);
  router.stage(0).set_replica_fault(0, FaultConfig{});
  router.stage(0).set_replica_fault(1, FaultConfig{});
  router.stage(1).set_replica_fault(0, persistent_fault());
  router.stage(1).set_replica_fault(1, persistent_fault());

  for (int i = 0; i < 4; ++i) {
    NetworkResponse resp = router.run(f.request("net" + std::to_string(i)));
    ASSERT_TRUE(resp.status.ok()) << i << ": " << resp.status.to_string();
    EXPECT_TRUE(resp.degraded) << i;
  }
  const PipelineStats s = router.stats();
  EXPECT_EQ(s.completed, 4);
  EXPECT_EQ(s.failed, 0);
  EXPECT_EQ(s.degraded, 4);
}

// Double-buffered overlap: concurrent submissions flow through both stages,
// one handoff per network, and every future resolves.
TEST(PipelineRouter, ConcurrentNetworksAllCompleteWithOneHandoffEach) {
  ScopedFaultInjection off(nullptr);
  const NetFixture f;
  PipelineRouter router(small_hw(), /*stages=*/2, quiet_options());
  for (int s = 0; s < router.stages(); ++s)
    router.stage(s).set_replica_fault(0, FaultConfig{});

  constexpr int kNetworks = 4;
  std::vector<std::future<NetworkResponse>> futures;
  for (int i = 0; i < kNetworks; ++i) {
    auto fut = router.submit(f.request("net" + std::to_string(i)));
    ASSERT_TRUE(fut.ok()) << fut.status().to_string();
    futures.push_back(std::move(*fut));
  }
  decltype(arch::MachineResult{}.activations) first;
  for (int i = 0; i < kNetworks; ++i) {
    NetworkResponse resp = futures[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(resp.status.ok()) << i << ": " << resp.status.to_string();
    if (i == 0)
      first = resp.result.activations;
    else
      EXPECT_EQ(resp.result.activations, first) << i;  // same net, same bytes
  }
  const PipelineStats s = router.stats();
  EXPECT_EQ(s.submitted, kNetworks);
  EXPECT_EQ(s.completed, kNetworks);
  EXPECT_EQ(s.handoffs, kNetworks);  // stages - 1 per network
  EXPECT_EQ(s.failed, 0);
}

}  // namespace
}  // namespace geo::serve
