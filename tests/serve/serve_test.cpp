// InferenceServer admission control, load shedding, overload steering and
// deadline propagation. Tests that assert bit-identity shield their
// replicas from ambient GEO_FAULTS with a zero-rate per-replica fault
// domain, so the suite is runnable under the chaos CI job unchanged.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "arch/machine.hpp"
#include "fault/fault_model.hpp"
#include "resilience/resilience.hpp"
#include "serve/serve.hpp"

namespace geo::serve {
namespace {

using arch::ConvShape;
using arch::GeoMachine;
using arch::HwConfig;
using fault::FaultConfig;
using fault::ScopedFaultInjection;

struct Fixture {
  ConvShape shape;
  std::vector<float> weights, input, ones, zeros;

  explicit Fixture(unsigned seed = 77) {
    shape = ConvShape::conv("t", 4, 6, 5, 3, 1, false);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(shape.weights()));
    for (auto& w : weights) w = wdist(rng);
    input.resize(static_cast<std::size_t>(shape.activations()));
    for (auto& a : input) a = adist(rng);
    ones.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    zeros.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }

  Request request(std::string tenant = "default") const {
    Request r;
    r.tenant = std::move(tenant);
    r.shape = shape;
    r.weights = weights;
    r.input = input;
    r.bn_scale = ones;
    r.bn_shift = zeros;
    r.layer_salt = 9;
    return r;
  }
};

HwConfig small_hw() {
  HwConfig hw = HwConfig::ulp();
  hw.accum = nn::AccumMode::kPbw;
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;
  return hw;
}

// A zero-rate fault domain: overrides any ambient GEO_FAULTS on the
// replica's thread without injecting anything.
FaultConfig no_faults() { return FaultConfig{}; }

void shield_all_replicas(InferenceServer& server) {
  for (int r = 0; r < server.options().replicas; ++r)
    server.set_replica_fault(r, no_faults());
}

ServeOptions base_options() {
  ServeOptions o;  // defaults, independent of ambient GEO_SERVE_*
  o.retry_backoff_us = 0;
  return o;
}

TEST(ServeOptions, ValidateAndHighWaterResolution) {
  ServeOptions o;
  EXPECT_TRUE(o.validate().ok());
  o.queue_capacity = 32;
  o.high_water = 0;
  EXPECT_EQ(o.effective_high_water(), 24);  // auto: 3/4 of capacity
  o.high_water = 5;
  EXPECT_EQ(o.effective_high_water(), 5);
  o.queue_capacity = 2;
  o.high_water = 0;
  EXPECT_EQ(o.effective_high_water(), 1);  // auto never resolves to 0

  ServeOptions bad;
  bad.replicas = 0;
  EXPECT_FALSE(bad.validate().ok());
  bad = ServeOptions{};
  bad.steer_rung = resilience::Rung::kNative;
  EXPECT_FALSE(bad.validate().ok());
}

TEST(InferenceServer, CleanRequestIsBitIdenticalToMachine) {
  const Fixture f;
  const HwConfig hw = small_hw();

  ScopedFaultInjection off(nullptr);
  GeoMachine machine(hw);
  auto expected =
      machine.try_run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9);
  ASSERT_TRUE(expected.ok());

  ServeOptions o = base_options();
  o.replicas = 2;
  InferenceServer server(hw, o);
  shield_all_replicas(server);

  Response resp = server.run(f.request());
  ASSERT_TRUE(resp.status.ok()) << resp.status.to_string();
  EXPECT_FALSE(resp.degraded);
  EXPECT_FALSE(resp.steered);
  EXPECT_EQ(resp.attempts, 1);
  EXPECT_GE(resp.replica, 0);
  EXPECT_EQ(resp.result.counters, expected->counters);
  EXPECT_EQ(resp.result.activations, expected->activations);
  EXPECT_EQ(resp.result.stats.total_cycles, expected->stats.total_cycles);

  const ServeStats s = server.stats();
  EXPECT_EQ(s.submitted, 1);
  EXPECT_EQ(s.admitted, 1);
  EXPECT_EQ(s.completed, 1);
  EXPECT_EQ(s.ok, 1);
  EXPECT_EQ(s.failed, 0);
}

TEST(InferenceServer, ShedsWhenQueueIsFull) {
  const Fixture f;
  ServeOptions o = base_options();
  o.replicas = 1;
  o.queue_capacity = 2;
  o.high_water = 2;  // >= capacity: no steering in this test
  o.tenant_quota = 100;
  InferenceServer server(small_hw(), o);
  shield_all_replicas(server);
  server.pause();

  auto a = server.submit(f.request());
  auto b = server.submit(f.request());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  auto c = server.submit(f.request());
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), geo::StatusCode::kResourceExhausted);

  server.resume();
  EXPECT_TRUE(a->get().status.ok());
  EXPECT_TRUE(b->get().status.ok());

  const ServeStats s = server.stats();
  EXPECT_EQ(s.shed_queue, 1);
  EXPECT_EQ(s.admitted, 2);
  EXPECT_EQ(s.completed, 2);
  EXPECT_EQ(s.failed, 0);
}

TEST(InferenceServer, ShedsTenantOverQuotaIndependently) {
  const Fixture f;
  ServeOptions o = base_options();
  o.replicas = 1;
  o.queue_capacity = 100;
  o.high_water = 100;
  o.tenant_quota = 1;
  InferenceServer server(small_hw(), o);
  shield_all_replicas(server);
  server.pause();

  auto a1 = server.submit(f.request("a"));
  ASSERT_TRUE(a1.ok());
  auto a2 = server.submit(f.request("a"));
  ASSERT_FALSE(a2.ok());
  EXPECT_EQ(a2.status().code(), geo::StatusCode::kResourceExhausted);
  // One noisy tenant must not starve another.
  auto b1 = server.submit(f.request("b"));
  ASSERT_TRUE(b1.ok());

  server.resume();
  EXPECT_TRUE(a1->get().status.ok());
  EXPECT_TRUE(b1->get().status.ok());

  const ServeStats s = server.stats();
  EXPECT_EQ(s.shed_quota, 1);
  EXPECT_EQ(s.completed, 2);

  // The quota slot freed on completion: tenant "a" admits again.
  EXPECT_TRUE(server.run(f.request("a")).status.ok());
}

TEST(InferenceServer, SteersPastHighWaterInsteadOfShedding) {
  const Fixture f;
  ServeOptions o = base_options();
  o.replicas = 1;
  o.queue_capacity = 8;
  o.high_water = 1;
  InferenceServer server(small_hw(), o);
  shield_all_replicas(server);
  server.pause();

  // Depth 0 at admit: full fidelity. Depth 1 and 2: steered.
  auto a = server.submit(f.request());
  auto b = server.submit(f.request());
  auto c = server.submit(f.request());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  server.resume();

  Response ra = a->get(), rb = b->get(), rc = c->get();
  ASSERT_TRUE(ra.status.ok());
  ASSERT_TRUE(rb.status.ok());
  ASSERT_TRUE(rc.status.ok());
  EXPECT_FALSE(ra.steered);
  EXPECT_TRUE(rb.steered);
  EXPECT_TRUE(rc.steered);
  // Steered requests complete on the degraded rung instead of being shed.
  EXPECT_TRUE(rb.degraded);
  EXPECT_TRUE(rc.degraded);

  const ServeStats s = server.stats();
  EXPECT_EQ(s.shed_queue, 0);
  EXPECT_EQ(s.steered, 2);
  EXPECT_EQ(s.degraded, 2);
  EXPECT_EQ(s.ok, 1);
  EXPECT_EQ(s.failed, 0);
}

TEST(InferenceServer, SteeredResultMatchesReferenceRung) {
  const Fixture f;
  const HwConfig hw = small_hw();

  // The expected reference-rung result, via the resilience layer directly.
  ScopedFaultInjection off(nullptr);
  resilience::ResilientExecutor ref(hw, resilience::RetryPolicy{});
  resilience::RunOptions steer;
  steer.start = resilience::Rung::kReference;
  auto expected = ref.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros,
                               9, "ref", steer);
  ASSERT_TRUE(expected.ok());

  ServeOptions o = base_options();
  o.replicas = 1;
  o.high_water = 1;
  o.steer_rung = resilience::Rung::kReference;
  InferenceServer server(hw, o);
  shield_all_replicas(server);
  server.pause();
  auto a = server.submit(f.request());  // depth 0: native
  auto b = server.submit(f.request());  // depth 1: steered
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  server.resume();
  (void)a->get();
  Response rb = b->get();
  ASSERT_TRUE(rb.status.ok());
  ASSERT_TRUE(rb.steered);
  EXPECT_EQ(rb.result.counters, expected->counters);
  EXPECT_EQ(rb.result.activations, expected->activations);
}

TEST(InferenceServer, RejectsMalformedRequestAtTheDoor) {
  const Fixture f;
  InferenceServer server(small_hw(), base_options());
  Request bad = f.request();
  bad.weights = bad.weights.subspan(0, 3);  // wrong operand size

  auto r = server.submit(std::move(bad));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), geo::StatusCode::kInvalidArgument);
  const ServeStats s = server.stats();
  EXPECT_EQ(s.rejected_invalid, 1);
  EXPECT_EQ(s.admitted, 0);
}

TEST(InferenceServer, RunFoldsAdmissionRefusalIntoResponse) {
  const Fixture f;
  ServeOptions o = base_options();
  o.replicas = 1;
  o.queue_capacity = 1;
  o.high_water = 1;
  InferenceServer server(small_hw(), o);
  shield_all_replicas(server);
  server.pause();
  auto a = server.submit(f.request());
  ASSERT_TRUE(a.ok());

  Response shed = server.run(f.request());
  EXPECT_EQ(shed.status.code(), geo::StatusCode::kResourceExhausted);

  server.resume();
  EXPECT_TRUE(a->get().status.ok());
}

TEST(InferenceServer, DeadlineExpiredInQueueIsTerminalAndChargesNothing) {
  const Fixture f;
  ServeOptions o = base_options();
  o.replicas = 1;
  o.queue_capacity = 8;
  o.high_water = 8;
  InferenceServer server(small_hw(), o);
  shield_all_replicas(server);
  server.pause();

  Request req = f.request();
  req.deadline_us = 1;
  auto fut = server.submit(std::move(req));
  ASSERT_TRUE(fut.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.resume();

  Response r = fut->get();
  EXPECT_EQ(r.status.code(), geo::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.attempts, 0);  // never reached a machine
  const ServeStats s = server.stats();
  EXPECT_EQ(s.deadline_expired, 1);
  EXPECT_EQ(s.completed, 1);
  EXPECT_EQ(s.failed, 0);

  // The replica it briefly occupied serves the next request normally.
  EXPECT_TRUE(server.run(f.request()).status.ok());
}

TEST(InferenceServer, TightDeadlineIsTerminalAndServerStaysUsable) {
  const Fixture f;
  ServeOptions o = base_options();
  o.replicas = 1;
  o.default_deadline_us = 1;  // expires in queue or mid-execution
  InferenceServer server(small_hw(), o);
  shield_all_replicas(server);

  Response r = server.run(f.request());
  EXPECT_EQ(r.status.code(), geo::StatusCode::kDeadlineExceeded);

  Request unlimited = f.request();
  unlimited.deadline_us = 0;  // override the server default: no deadline
  Response clean = server.run(std::move(unlimited));
  EXPECT_TRUE(clean.status.ok()) << clean.status.to_string();
  EXPECT_EQ(server.stats().failed, 0);
}

TEST(InferenceServer, DestructorDrainsAdmittedRequests) {
  const Fixture f;
  std::vector<std::future<Response>> futures;
  {
    ServeOptions o = base_options();
    o.replicas = 2;
    o.queue_capacity = 16;
    o.high_water = 16;
    InferenceServer server(small_hw(), o);
    shield_all_replicas(server);
    server.pause();
    for (int i = 0; i < 6; ++i) {
      auto fut = server.submit(f.request());
      ASSERT_TRUE(fut.ok());
      futures.push_back(std::move(*fut));
    }
    server.resume();
    // Destruction races the queue drain on purpose.
  }
  for (auto& fut : futures) {
    Response r = fut.get();
    EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  }
}

TEST(InferenceServer, SubmitAfterShutdownWouldBeRefused) {
  // The stopping_ check is reachable only from another thread mid-
  // destruction; validate() covers the contract here instead: a server is
  // constructible only from valid options.
  ServeOptions o = base_options();
  o.retries = -1;
  EXPECT_THROW(InferenceServer(small_hw(), o), std::invalid_argument);
}

}  // namespace
}  // namespace geo::serve
