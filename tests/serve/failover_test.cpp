// Replica failure handling: cooperative cancellation at tile boundaries,
// cross-replica failover of persistent faults, circuit-breaker quarantine
// and half-open re-admission, and the fully-quarantined-fleet forced probe.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "arch/machine.hpp"
#include "exec/cancel.hpp"
#include "fault/fault_model.hpp"
#include "resilience/resilience.hpp"
#include "serve/health.hpp"
#include "serve/serve.hpp"

namespace geo::serve {
namespace {

using arch::ConvShape;
using arch::GeoMachine;
using arch::HwConfig;
using fault::FaultConfig;
using fault::ScopedFaultInjection;

// A defect-model spec that reliably degrades executions: deterministic
// double-bit SRAM bursts that SECDED detects but cannot correct, and that
// re-execution reproduces (per-site RNG), draining the tile-retry budget.
FaultConfig persistent_fault() {
  auto cfg = FaultConfig::parse("sram=2e-2,burst=2,ecc=secded,rng=99");
  EXPECT_TRUE(cfg.ok());
  return *cfg;
}

struct Fixture {
  ConvShape shape;
  std::vector<float> weights, input, ones, zeros;

  explicit Fixture(unsigned seed = 77) {
    shape = ConvShape::conv("t", 4, 6, 5, 3, 1, false);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(shape.weights()));
    for (auto& w : weights) w = wdist(rng);
    input.resize(static_cast<std::size_t>(shape.activations()));
    for (auto& a : input) a = adist(rng);
    ones.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    zeros.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }

  Request request() const {
    Request r;
    r.shape = shape;
    r.weights = weights;
    r.input = input;
    r.bn_scale = ones;
    r.bn_shift = zeros;
    r.layer_salt = 9;
    return r;
  }
};

HwConfig small_hw() {
  HwConfig hw = HwConfig::ulp();
  hw.accum = nn::AccumMode::kPbw;
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;
  return hw;
}

TEST(CancelToken, TripsManuallyOnDeadlineAndOnNthPoll) {
  exec::CancelToken manual;
  EXPECT_FALSE(manual.cancelled());
  manual.cancel();
  EXPECT_TRUE(manual.cancelled());
  EXPECT_TRUE(manual.cancel_requested());

  exec::CancelToken expired;
  expired.set_deadline(std::chrono::steady_clock::now() -
                       std::chrono::microseconds(1));
  EXPECT_TRUE(expired.cancelled());

  exec::CancelToken future_deadline;
  future_deadline.set_deadline(std::chrono::steady_clock::now() +
                               std::chrono::hours(1));
  EXPECT_FALSE(future_deadline.cancelled());

  exec::CancelToken tripwire;
  tripwire.trip_after(3);
  EXPECT_FALSE(tripwire.cancelled());  // poll 1
  EXPECT_FALSE(tripwire.cancelled());  // poll 2
  EXPECT_TRUE(tripwire.cancelled());   // poll 3 trips
  EXPECT_TRUE(tripwire.cancelled());   // sticky
  EXPECT_EQ(tripwire.polls(), 4);
}

// Satellite: a deadline firing mid-execution abandons the layer at a tile
// boundary (no further cycles are charged, no outcome is recorded) and the
// machinery stays reusable — the next run is byte-identical to a fresh one.
TEST(ResilientExecutor, MidExecutionCancelReleasesAndStaysByteIdentical) {
  const Fixture f;
  const HwConfig hw = small_hw();
  ScopedFaultInjection off(nullptr);

  resilience::ResilientExecutor fresh(hw, resilience::RetryPolicy{});
  auto expected =
      fresh.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9, "ref");
  ASSERT_TRUE(expected.ok());

  resilience::ResilientExecutor exec(hw, resilience::RetryPolicy{});
  exec::CancelToken token;
  token.trip_after(2);  // fires at an early tile/rung boundary
  resilience::RunOptions options;
  options.cancel = &token;
  auto cancelled = exec.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros,
                                 9, "cancelled", options);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), geo::StatusCode::kDeadlineExceeded);
  // The abandoned attempt records no outcome: it neither degraded nor
  // completed, and its partial cycle ledger died with the execution.
  EXPECT_TRUE(exec.report().layers.empty());

  auto after = exec.run_conv(f.shape, f.weights, f.input, f.ones, f.zeros, 9,
                             "after-cancel");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->counters, expected->counters);
  EXPECT_EQ(after->activations, expected->activations);
  EXPECT_EQ(after->stats.total_cycles, expected->stats.total_cycles);
  ASSERT_EQ(exec.report().layers.size(), 1u);
  EXPECT_FALSE(exec.report().layers[0].degraded);
}

TEST(ReplicaHealth, OpensAfterStrikesProbesAndReadmits) {
  ReplicaHealth health(/*replicas=*/2, /*strikes_to_open=*/2,
                       /*probe_after=*/3);
  EXPECT_TRUE(health.admit(0));
  EXPECT_EQ(health.on_outcome(0, false), ReplicaHealth::Transition::kNone);
  // A clean outcome resets the strike count.
  EXPECT_EQ(health.on_outcome(0, true), ReplicaHealth::Transition::kNone);
  EXPECT_EQ(health.on_outcome(0, false), ReplicaHealth::Transition::kNone);
  EXPECT_EQ(health.on_outcome(0, false), ReplicaHealth::Transition::kOpened);
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
  EXPECT_FALSE(health.admit(0));  // quarantined, countdown not drained
  EXPECT_TRUE(health.other_candidate(0));   // replica 1 can take failovers
  EXPECT_FALSE(health.other_candidate(1));  // replica 0 cannot
  EXPECT_TRUE(health.only_candidate(1));

  // Completions on replica 1 drain replica 0's probe countdown.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(health.admit(0));
    EXPECT_EQ(health.on_outcome(1, true), ReplicaHealth::Transition::kNone);
  }
  bool probe = false;
  EXPECT_TRUE(health.admit(0, &probe));
  EXPECT_TRUE(probe);
  EXPECT_EQ(health.state(0), BreakerState::kHalfOpen);
  EXPECT_FALSE(health.admit(0));  // one probe at a time

  // Failed probe re-opens and restarts the countdown.
  EXPECT_EQ(health.on_outcome(0, false), ReplicaHealth::Transition::kReopened);
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
  for (int i = 0; i < 3; ++i)
    (void)health.on_outcome(1, true);
  probe = false;
  EXPECT_TRUE(health.admit(0, &probe));
  EXPECT_TRUE(probe);
  EXPECT_EQ(health.on_outcome(0, true), ReplicaHealth::Transition::kClosed);
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  EXPECT_TRUE(health.admit(0));
}

TEST(ReplicaHealth, FullyOpenFleetForcesAProbe) {
  ReplicaHealth health(2, 1, 100);
  EXPECT_EQ(health.on_outcome(0, false), ReplicaHealth::Transition::kOpened);
  EXPECT_EQ(health.on_outcome(1, false), ReplicaHealth::Transition::kOpened);
  // Countdown is nowhere near drained, but refusing both replicas would
  // deadlock the fleet — admission is forced.
  bool probe = false;
  EXPECT_TRUE(health.admit(0, &probe));
  EXPECT_TRUE(probe);
}

TEST(ReplicaHealth, NoSignalReturnsProbeSlotWithoutBurningIt) {
  ReplicaHealth health(2, 1, 2);
  (void)health.on_outcome(0, false);  // open
  (void)health.on_outcome(1, true);
  (void)health.on_outcome(1, true);   // countdown drained
  bool probe = false;
  EXPECT_TRUE(health.admit(0, &probe));
  EXPECT_TRUE(probe);
  health.on_no_signal(0);  // the probe request expired before executing
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
  probe = false;
  EXPECT_TRUE(health.admit(0, &probe));  // immediately probe-eligible again
  EXPECT_TRUE(probe);
}

// Satellite: end-to-end quarantine. A persistently-faulted replica is
// struck on every degraded outcome, quarantined by its breaker, traffic
// fails over to the healthy replica (responses stay full-fidelity), and
// after the fault clears a half-open probe re-admits it.
TEST(InferenceServer, QuarantinesFaultyReplicaFailsOverThenReadmits) {
  const Fixture f;
  ServeOptions o;
  o.replicas = 2;
  o.queue_capacity = 64;
  o.high_water = 64;  // no steering: isolate the failover path
  o.tenant_quota = 64;
  o.retries = 2;
  o.retry_backoff_us = 0;
  o.breaker_strikes = 2;
  o.probe_after = 3;
  InferenceServer server(small_hw(), o);
  server.set_replica_fault(0, persistent_fault());
  server.set_replica_fault(1, FaultConfig{});  // clean (shields GEO_FAULTS)

  // Drive batches until replica 0's breaker opens. Every response must be
  // full fidelity: replica 0's degraded attempts fail over to replica 1.
  bool opened = false;
  for (int round = 0; round < 40 && !opened; ++round) {
    server.pause();
    std::vector<std::future<Response>> batch;
    for (int i = 0; i < 4; ++i) {
      auto fut = server.submit(f.request());
      ASSERT_TRUE(fut.ok());
      batch.push_back(std::move(*fut));
    }
    server.resume();
    for (auto& fut : batch) {
      Response r = fut.get();
      ASSERT_TRUE(r.status.ok()) << r.status.to_string();
      EXPECT_FALSE(r.degraded);  // failover preserved fidelity
      if (r.attempts > 1) EXPECT_EQ(r.replica, 1);
    }
    opened = server.stats().quarantines > 0;
  }
  ASSERT_TRUE(opened) << "replica 0 never quarantined";
  ServeStats mid = server.stats();
  EXPECT_GT(mid.failovers, 0);
  EXPECT_EQ(mid.failed, 0);

  // Heal replica 0 and keep serving: completions on replica 1 drain the
  // probe countdown, the half-open probe succeeds, the breaker closes.
  server.set_replica_fault(0, FaultConfig{});
  bool readmitted = false;
  for (int i = 0; i < 60 && !readmitted; ++i) {
    Response r = server.run(f.request());
    ASSERT_TRUE(r.status.ok()) << r.status.to_string();
    EXPECT_FALSE(r.degraded);
    readmitted = server.stats().readmits > 0 &&
                 server.replica_state(0) == BreakerState::kClosed;
  }
  ASSERT_TRUE(readmitted) << "replica 0 never re-admitted";
  const ServeStats s = server.stats();
  EXPECT_GT(s.probes, 0);
  EXPECT_GT(s.readmits, 0);
  EXPECT_EQ(s.failed, 0);
}

// With every replica faulted the fleet degrades instead of deadlocking or
// failing: breakers open, the forced probe keeps admission alive, and all
// responses are terminal (degraded is acceptable; failed is not).
TEST(InferenceServer, FullyFaultedFleetServesDegradedNeverFails) {
  const Fixture f;
  ServeOptions o;
  o.replicas = 2;
  o.queue_capacity = 64;
  o.high_water = 64;
  o.tenant_quota = 64;
  o.retries = 1;
  o.retry_backoff_us = 0;
  o.breaker_strikes = 1;
  o.probe_after = 4;
  InferenceServer server(small_hw(), o);
  server.set_replica_fault(0, persistent_fault());
  server.set_replica_fault(1, persistent_fault());

  int degraded = 0;
  for (int i = 0; i < 10; ++i) {
    Response r = server.run(f.request());
    ASSERT_TRUE(r.status.ok()) << r.status.to_string();
    if (r.degraded) ++degraded;
  }
  EXPECT_EQ(degraded, 10);  // persistent faults everywhere: all degraded
  const ServeStats s = server.stats();
  EXPECT_EQ(s.completed, 10);
  EXPECT_EQ(s.failed, 0);
  EXPECT_GT(s.quarantines, 0);
}

}  // namespace
}  // namespace geo::serve
