// Batched serving: knob parsing, byte-identity of batched dispatch against
// solo per-request execution (across thread counts and fault modes, at both
// the resilience and the serving layer), mid-batch deadline isolation, and
// batch bookkeeping.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "exec/cancel.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_model.hpp"
#include "resilience/resilience.hpp"
#include "serve/serve.hpp"

namespace geo::serve {
namespace {

using arch::ConvShape;
using arch::HwConfig;
using fault::FaultConfig;
using fault::ScopedFaultInjection;

FaultConfig persistent_fault() {
  auto cfg = FaultConfig::parse("sram=2e-2,burst=2,ecc=secded,rng=99");
  EXPECT_TRUE(cfg.ok());
  return *cfg;
}

HwConfig small_hw() {
  HwConfig hw = HwConfig::ulp();
  hw.accum = nn::AccumMode::kPbw;
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;
  return hw;
}

// One model, K distinct inputs — the same-model burst batching coalesces.
struct BatchFixture {
  ConvShape shape;
  std::vector<float> weights, ones, zeros;
  std::vector<std::vector<float>> inputs;

  explicit BatchFixture(int k = 4, unsigned seed = 77) {
    shape = ConvShape::conv("t", 4, 6, 5, 3, 1, false);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(shape.weights()));
    for (auto& w : weights) w = wdist(rng);
    inputs.resize(static_cast<std::size_t>(k));
    for (auto& input : inputs) {
      input.resize(static_cast<std::size_t>(shape.activations()));
      for (auto& a : input) a = adist(rng);
    }
    ones.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    zeros.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }

  Request request(int i) const {
    Request r;
    r.shape = shape;
    r.weights = weights;
    r.input = inputs[static_cast<std::size_t>(i)];
    r.bn_scale = ones;
    r.bn_shift = zeros;
    r.layer_salt = 9;
    r.label = "req" + std::to_string(i);
    return r;
  }
};

// Env round-trip helper so the knob test restores whatever the CI leg set.
struct ScopedEnv {
  std::string name;
  std::string saved;
  bool had = false;

  ScopedEnv(const char* n, const char* value) : name(n) {
    if (const char* old = std::getenv(n)) {
      had = true;
      saved = old;
    }
    ::setenv(n, value, 1);
  }
  ~ScopedEnv() {
    if (had)
      ::setenv(name.c_str(), saved.c_str(), 1);
    else
      ::unsetenv(name.c_str());
  }
};

TEST(ServeOptionsBatch, KnobsParseAndFailClosed) {
  {
    ScopedEnv b("GEO_SERVE_BATCH", "8");
    ScopedEnv w("GEO_SERVE_BATCH_WAIT_US", "500");
    ScopedEnv p("GEO_SERVE_PREWARM", "0");
    const ServeOptions o = ServeOptions::from_env();
    EXPECT_EQ(o.batch, 8);
    EXPECT_EQ(o.batch_wait_us, 500);
    EXPECT_FALSE(o.prewarm);
    EXPECT_NE(o.to_string().find("batch=8"), std::string::npos);
  }
  {
    // Fail-closed: malformed / out-of-range values fall back to defaults.
    ScopedEnv b("GEO_SERVE_BATCH", "bogus");
    ScopedEnv w("GEO_SERVE_BATCH_WAIT_US", "-3");
    ScopedEnv p("GEO_SERVE_PREWARM", "2");
    const ServeOptions o = ServeOptions::from_env();
    EXPECT_EQ(o.batch, 1);
    EXPECT_EQ(o.batch_wait_us, 0);
    EXPECT_TRUE(o.prewarm);
  }
  ServeOptions bad;
  bad.batch = 0;
  EXPECT_FALSE(bad.validate().ok());
}

// Tentpole contract at the resilience layer: run_conv_batch's per-item
// results are byte-identical to solo run_conv on the same inputs, across
// thread counts and fault modes. Faults force the demote path (the shared
// native rung drains its budget); no-fault exercises the shared rebind path.
TEST(ResilientExecutor, BatchMatchesSoloAcrossThreadsAndFaults) {
  const BatchFixture f(4);
  const HwConfig hw = small_hw();

  for (const bool faulted : {false, true}) {
    std::optional<ScopedFaultInjection> scope;
    if (faulted)
      scope.emplace(persistent_fault());
    else
      scope.emplace(nullptr);

    // Solo references, one fresh executor per request (the serve_one shape).
    std::vector<arch::MachineResult> expected;
    std::vector<bool> expected_degraded;
    for (const auto& input : f.inputs) {
      resilience::ResilientExecutor solo(hw, resilience::RetryPolicy{});
      auto r = solo.run_conv(f.shape, f.weights, input, f.ones, f.zeros, 9);
      ASSERT_TRUE(r.ok());
      expected.push_back(*std::move(r));
      expected_degraded.push_back(solo.report().layers.back().degraded);
    }

    for (const int threads : {1, 8}) {
      exec::ScopedThreads scoped(threads);
      resilience::ResilientExecutor executor(hw, resilience::RetryPolicy{});
      std::vector<resilience::BatchItem> items;
      for (std::size_t i = 0; i < f.inputs.size(); ++i) {
        resilience::BatchItem item;
        item.input = f.inputs[i];
        item.label = "item" + std::to_string(i);
        items.push_back(std::move(item));
      }
      auto results = executor.run_conv_batch(f.shape, f.weights, f.ones,
                                             f.zeros, 9, items);
      ASSERT_EQ(results.size(), f.inputs.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].result.ok())
            << "faulted=" << faulted << " threads=" << threads << " item " << i;
        EXPECT_EQ(results[i].result->counters, expected[i].counters)
            << "faulted=" << faulted << " threads=" << threads << " item " << i;
        EXPECT_EQ(results[i].result->activations, expected[i].activations);
        EXPECT_EQ(results[i].degraded, expected_degraded[i]);
        // No faults: every item rides the shared preparation. Persistent
        // faults: the shared rung's budget drains and items demote to the
        // solo ladder.
        EXPECT_EQ(results[i].shared, !faulted);
      }
      ASSERT_EQ(executor.report().layers.size(), f.inputs.size());
    }
  }
}

// A transient fault model makes reuse of generated weight streams unsound
// (regeneration draws fresh per-site sequences) — the batch must fall back
// to per-item solo execution rather than share the preparation.
TEST(ResilientExecutor, BatchFallsBackPerItemUnderTransientFaults) {
  const BatchFixture f(2);
  auto cfg = FaultConfig::parse("sram=1e-3,ecc=secded,transient=1,rng=5");
  ASSERT_TRUE(cfg.ok());
  ScopedFaultInjection scope(*cfg);

  resilience::ResilientExecutor executor(small_hw(),
                                         resilience::RetryPolicy{});
  std::vector<resilience::BatchItem> items;
  for (const auto& input : f.inputs) {
    resilience::BatchItem item;
    item.input = input;
    items.push_back(std::move(item));
  }
  auto results = executor.run_conv_batch(f.shape, f.weights, f.ones, f.zeros,
                                         9, items);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.result.ok());
    EXPECT_FALSE(r.shared);
  }
}

// Server-level byte-identity: a batch=4 server produces, per request, the
// exact bytes a batch=1 server produces — across thread counts and with a
// persistent per-replica fault. Single replica so no failover reordering.
TEST(InferenceServer, BatchedOutputsByteIdenticalToUnbatched) {
  const BatchFixture f(4);
  const auto options = [](int batch) {
    ServeOptions o;
    o.replicas = 1;
    o.queue_capacity = 64;
    o.high_water = 64;  // no steering
    o.tenant_quota = 64;
    o.retries = 1;
    o.retry_backoff_us = 0;
    o.batch = batch;
    return o;
  };

  for (const bool faulted : {false, true}) {
    // Unbatched reference bytes.
    std::vector<arch::MachineResult> expected;
    std::vector<bool> expected_degraded;
    {
      InferenceServer server(small_hw(), options(1));
      server.set_replica_fault(0,
                               faulted ? persistent_fault() : FaultConfig{});
      for (int i = 0; i < 4; ++i) {
        Response r = server.run(f.request(i));
        ASSERT_TRUE(r.status.ok()) << r.status.to_string();
        EXPECT_FALSE(r.batched);
        expected.push_back(std::move(r.result));
        expected_degraded.push_back(r.degraded);
      }
    }

    for (const int threads : {1, 8}) {
      exec::ScopedThreads scoped(threads);
      InferenceServer server(small_hw(), options(4));
      server.set_replica_fault(0,
                               faulted ? persistent_fault() : FaultConfig{});
      server.pause();
      std::vector<std::future<Response>> futures;
      for (int i = 0; i < 4; ++i) {
        auto fut = server.submit(f.request(i));
        ASSERT_TRUE(fut.ok());
        futures.push_back(std::move(*fut));
      }
      server.resume();
      for (int i = 0; i < 4; ++i) {
        Response r = futures[static_cast<std::size_t>(i)].get();
        ASSERT_TRUE(r.status.ok()) << r.status.to_string();
        EXPECT_TRUE(r.batched);
        EXPECT_EQ(r.result.counters, expected[static_cast<std::size_t>(i)].counters)
            << "faulted=" << faulted << " threads=" << threads << " req " << i;
        EXPECT_EQ(r.result.activations,
                  expected[static_cast<std::size_t>(i)].activations);
        EXPECT_EQ(r.degraded, expected_degraded[static_cast<std::size_t>(i)]);
      }
      const ServeStats s = server.stats();
      EXPECT_EQ(s.completed, 4);
      EXPECT_EQ(s.failed, 0);
      EXPECT_EQ(s.batches, 1);
      EXPECT_EQ(s.batched_requests, 4);
      EXPECT_EQ(s.prewarms, 4);  // one per admitted request
    }
  }
}

// Satellite: a deadline firing mid-batch cancels only the expired request;
// the batch's other members complete byte-identical to unbatched execution
// and the replica stays healthy and reusable.
TEST(InferenceServer, MidBatchDeadlineCancelsOnlyExpiredRequest) {
  const BatchFixture f(4);
  ServeOptions o;
  o.replicas = 1;
  o.queue_capacity = 64;
  o.high_water = 64;
  o.tenant_quota = 64;
  o.retries = 1;
  o.retry_backoff_us = 0;
  o.batch = 4;

  // Unbatched reference for the surviving members.
  std::vector<arch::MachineResult> expected;
  {
    InferenceServer server(small_hw(), o);
    server.set_replica_fault(0, FaultConfig{});
    for (int i = 0; i < 4; ++i) {
      Response r = server.run(f.request(i));
      ASSERT_TRUE(r.status.ok()) << r.status.to_string();
      expected.push_back(std::move(r.result));
    }
  }

  InferenceServer server(small_hw(), o);
  server.set_replica_fault(0, FaultConfig{});
  server.pause();
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) {
    Request r = f.request(i);
    // Poll 1: serve_batch's expired-in-queue check. Poll 2: the batch's
    // per-item entry check. Poll 3: the first in-execution cancellation
    // poll — a deterministic mid-execution trip for request 2 only.
    if (i == 2) r.trip_after_polls = 3;
    auto fut = server.submit(std::move(r));
    ASSERT_TRUE(fut.ok());
    futures.push_back(std::move(*fut));
  }
  server.resume();
  for (int i = 0; i < 4; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();
    if (i == 2) {
      EXPECT_EQ(r.status.code(), geo::StatusCode::kDeadlineExceeded);
      continue;
    }
    ASSERT_TRUE(r.status.ok()) << r.status.to_string();
    EXPECT_TRUE(r.batched);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.result.counters, expected[static_cast<std::size_t>(i)].counters);
    EXPECT_EQ(r.result.activations,
              expected[static_cast<std::size_t>(i)].activations);
  }
  ServeStats s = server.stats();
  EXPECT_EQ(s.completed, 4);
  EXPECT_EQ(s.deadline_expired, 1);
  EXPECT_EQ(s.failed, 0);

  // The replica took no health strike and serves the next request normally.
  EXPECT_EQ(server.replica_state(0), BreakerState::kClosed);
  Response after = server.run(f.request(2));
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.result.activations, expected[2].activations);
}

// Incompatible requests (different weights) never share a batch dispatch,
// and batching composes with the zero-failed-requests contract under a
// fully-faulted fleet.
TEST(InferenceServer, BatchingRespectsCompatibilityAndFaultContract) {
  const BatchFixture f(4);
  BatchFixture other(4, /*seed=*/1234);  // different weights, same shape

  ServeOptions o;
  o.replicas = 2;
  o.queue_capacity = 64;
  o.high_water = 64;
  o.tenant_quota = 64;
  o.retries = 1;
  o.retry_backoff_us = 0;
  o.breaker_strikes = 1;
  o.probe_after = 4;
  o.batch = 8;
  InferenceServer server(small_hw(), o);
  server.set_replica_fault(0, persistent_fault());
  server.set_replica_fault(1, persistent_fault());

  server.pause();
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) {
    auto fut = server.submit(f.request(i));
    ASSERT_TRUE(fut.ok());
    futures.push_back(std::move(*fut));
    auto fut2 = server.submit(other.request(i));
    ASSERT_TRUE(fut2.ok());
    futures.push_back(std::move(*fut2));
  }
  server.resume();
  int degraded = 0;
  for (auto& fut : futures) {
    Response r = fut.get();
    ASSERT_TRUE(r.status.ok()) << r.status.to_string();
    if (r.degraded) ++degraded;
  }
  const ServeStats s = server.stats();
  EXPECT_EQ(s.completed, 8);
  EXPECT_EQ(s.failed, 0);
  EXPECT_EQ(degraded, 8);  // persistent faults everywhere
}

}  // namespace
}  // namespace geo::serve
